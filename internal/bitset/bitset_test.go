package bitset

import "testing"

func TestSetBasics(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("zero value not empty: %v", s)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 126, 127, 128, 191} {
		if s.Has(i) {
			t.Fatalf("Has(%d) before Add", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if s.Count() != 9 {
		t.Fatalf("Count = %d, want 9", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 8 {
		t.Fatalf("Remove(64) failed: count %d", s.Count())
	}
	// Remove of an absent element is a no-op.
	s.Remove(64)
	if s.Count() != 8 {
		t.Fatalf("double Remove changed count: %d", s.Count())
	}
}

func TestSetOverlapUnion(t *testing.T) {
	var a, b Set
	a.Add(3)
	a.Add(70)
	a.Add(130)
	b.Add(70)
	b.Add(130)
	b.Add(185)
	if got := a.Overlap(b); got != 2 {
		t.Fatalf("Overlap = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	u := a.Union(b)
	if u.Count() != 4 {
		t.Fatalf("Union count = %d, want 4", u.Count())
	}
	for _, i := range []int{3, 70, 130, 185} {
		if !u.Has(i) {
			t.Fatalf("Union missing %d", i)
		}
	}
	var c Set
	c.Add(64)
	if a.Intersects(c) || a.Overlap(c) != 0 {
		t.Fatal("disjoint sets reported as overlapping")
	}
}

func TestSetComparable(t *testing.T) {
	var a, b Set
	a.Add(127)
	b.Add(127)
	if a != b {
		t.Fatal("equal sets compare unequal")
	}
	m := map[Set]int{a: 1}
	if m[b] != 1 {
		t.Fatal("Set not usable as map key")
	}
	b.Add(0)
	if a == b {
		t.Fatal("distinct sets compare equal")
	}
}

func TestSetHash(t *testing.T) {
	var a, b Set
	a.Add(5)
	b.Add(5)
	if a.Hash() != b.Hash() {
		t.Fatal("equal sets hash differently")
	}
	b.Add(150)
	if a.Hash() == b.Hash() {
		t.Fatal("distinct sets collide (word mixing broken)")
	}
	// Same bit pattern in different words must hash differently.
	var c, d Set
	c.Add(1)
	d.Add(65)
	if c.Hash() == d.Hash() {
		t.Fatal("word position not mixed into hash")
	}
}
