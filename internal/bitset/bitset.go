// Package bitset provides a small fixed-stride multi-word bitset for
// device-qubit and device-edge index sets.
//
// The compiler stack historically packed layout footprints into a single
// uint64, capping devices at 64 qubits. Set widens that to a fixed
// [Words]uint64 array — wide enough for the 127-qubit Eagle heavy-hex
// device and its 144 edges — while keeping the properties the hot paths
// rely on: it is a comparable value type (usable as a map key), lives
// inline in structs with no heap allocation, and supports word-parallel
// intersection/overlap tests.
//
// APIs that still assume a single-word mask must reject devices wider
// than their representation explicitly (device.ErrDeviceTooWide) rather
// than silently truncating; Cap is the widened ceiling that replaced the
// old 64-element one.
package bitset

import "math/bits"

// Words is the fixed stride of a Set in 64-bit words.
const Words = 3

// Cap is the number of distinct elements a Set can hold (0..Cap-1).
// 192 covers the Eagle-127 heavy-hex device's 127 qubits and 144 edges
// with headroom.
const Cap = Words * 64

// Set is a fixed-width bitset over [0, Cap). The zero value is the empty
// set. Set is comparable, so it can key maps directly.
type Set [Words]uint64

// Add sets element i. i must be in [0, Cap).
func (s *Set) Add(i int) {
	s[i>>6] |= 1 << uint(i&63)
}

// Remove clears element i. i must be in [0, Cap).
func (s *Set) Remove(i int) {
	s[i>>6] &^= 1 << uint(i&63)
}

// Has reports whether element i is set. i must be in [0, Cap).
func (s Set) Has(i int) bool {
	return s[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Overlap returns the number of elements shared with t.
func (s Set) Overlap(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w & t[i])
	}
	return n
}

// Intersects reports whether the sets share any element.
func (s Set) Intersects(t Set) bool {
	for i, w := range s {
		if w&t[i] != 0 {
			return true
		}
	}
	return false
}

// Union returns the elementwise union of s and t.
func (s Set) Union(t Set) Set {
	var u Set
	for i, w := range s {
		u[i] = w | t[i]
	}
	return u
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Hash folds the set into a 64-bit FNV-style fingerprint, matching the
// mixing discipline of the mapper's integer keys.
func (s Set) Hash() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, w := range s {
		h ^= w
		h *= fnvPrime
	}
	return h
}
