// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Every experiment in this repo must be exactly reproducible from a single
// integer seed: the paper's methodology (16,384 trials per run, 10 rounds,
// median reported) only makes sense if a run can be repeated bit-for-bit.
// The standard library generators are excellent but their stream-splitting
// story is awkward; this package implements SplitMix64, whose output
// quality is more than sufficient for Monte-Carlo sampling and whose
// derivation rule ("hash a label into a child seed") makes independent
// sub-streams trivial to create.
package rng

import (
	"math"
)

// golden is the SplitMix64 increment (the odd constant 2^64/phi).
const golden = 0x9E3779B97F4A7C15

// FNV-1a 64-bit constants, inlined (instead of hash/fnv) so that stream
// derivation — which Run performs once per trial — allocates nothing.
// The byte-for-byte hashing order matches the original hash/fnv-based
// implementation, so derived streams are unchanged.
const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*i)))) * fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// RNG is a deterministic pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New for an explicit seed.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's current internal state. Two generators
// with equal states produce identical streams and identical derived
// children, so the state is a sound cache key for any computation that
// is a pure function of its RNG — the backend's trial-run cache keys on
// it. Reading the state does not advance the stream.
func (r *RNG) State() uint64 { return r.state }

// Derive returns a new independent generator whose seed is a function of the
// parent's seed and the given label. Deriving with the same label from
// generators in the same state yields identical children; different labels
// yield (statistically) independent children. Derive does not advance the
// parent's stream.
func (r *RNG) Derive(label string) *RNG {
	// Mix the parent state first so children of differently seeded parents
	// differ even for equal labels.
	h := fnvUint64(fnvOffset64, r.state)
	h = fnvString(h, label)
	return &RNG{state: mix(h)}
}

// DeriveN is Derive keyed by an integer, convenient for per-trial or
// per-round sub-streams.
func (r *RNG) DeriveN(label string, n int) *RNG {
	h := fnvUint64(fnvOffset64, r.state)
	h = fnvString(h, label)
	h = fnvUint64(h, uint64(n))
	return &RNG{state: mix(h)}
}

// Skip advances the generator as if n Uint64 draws had been made and
// their values discarded, in O(1). Uint64 advances the state by the
// fixed increment `golden` before mixing, so skipping is a single
// multiply-add; Float64 and Bernoulli consume exactly one Uint64 each,
// which is what lets the backend's prefix-sharing trajectory engine
// fast-forward a trial stream to a checkpoint's draw position.
func (r *RNG) Skip(n int) {
	if n < 0 {
		panic("rng: Skip with negative n")
	}
	r.state += golden * uint64(n)
}

// goldenInv is the multiplicative inverse of golden modulo 2^64
// (golden is odd, hence invertible). Computed by Newton iteration:
// each step doubles the number of correct low bits.
var goldenInv = func() uint64 {
	x := uint64(golden) // correct to 3 bits: a*a == 1 (mod 8) for odd a
	for i := 0; i < 5; i++ {
		x *= 2 - golden*x
	}
	return x
}()

// DrawCount returns how many Uint64 draws advanced a generator from
// state a to state b. Every draw — including each rejection-loop
// iteration inside Intn — moves the state by exactly `golden`, so the
// count is the state delta times golden's modular inverse. Tests use it
// as a non-invasive draw counter: snapshot State before and after a
// computation and compare counts across implementations.
func DrawCount(a, b uint64) uint64 {
	return (b - a) * goldenInv
}

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits scaled into [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free enough for our n (n << 2^64 makes the
	// modulo bias negligible, but we still reject to stay exact).
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Norm returns a standard normally distributed value (mean 0, stddev 1)
// using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// NormRange returns a normal sample with the given mean and standard
// deviation, clamped to [lo, hi]. It is used to draw per-qubit calibration
// values that must stay inside physically meaningful bounds.
func (r *RNG) NormRange(mean, stddev, lo, hi float64) float64 {
	v := mean + stddev*r.Norm()
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Choose returns an index in [0, len(weights)) sampled proportionally to the
// weights, which must be non-negative and not all zero.
func (r *RNG) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
