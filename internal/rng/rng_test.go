package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive("alpha")
	c2 := parent.Derive("beta")
	c1again := parent.Derive("alpha")
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Derive with same label is not deterministic")
	}
	if c1.state == c2.state {
		t.Fatal("Derive with different labels produced same state")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	_ = p1.Derive("x")
	_ = p1.DeriveN("y", 3)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestDeriveNDistinct(t *testing.T) {
	p := New(11)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		c := p.DeriveN("trial", i)
		if seen[c.state] {
			t.Fatalf("DeriveN collision at %d", i)
		}
		seen[c.state] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(8)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn bucket %d count %d not near uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormRangeClamps(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.NormRange(0.5, 10, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("NormRange escaped clamp: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestChooseProportional(t *testing.T) {
	r := New(29)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choose(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Choose bucket %d rate %v, want ~%v", i, got, want)
		}
	}
}

func TestChoosePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose with zero weights did not panic")
		}
	}()
	New(1).Choose([]float64{0, 0})
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64()
	_ = r.Float64()
}

func TestStateIsCacheKey(t *testing.T) {
	a, b := New(9), New(9)
	if a.State() != b.State() {
		t.Fatal("equal seeds, different states")
	}
	// Equal states => identical streams and identical children.
	if a.Derive("x").Uint64() != b.Derive("x").Uint64() {
		t.Fatal("equal states derived different children")
	}
	// Reading the state must not advance the stream.
	s := a.State()
	if a.State() != s || a.Uint64() != b.Uint64() {
		t.Fatal("State advanced the stream")
	}
	// Advancing the stream must change the state.
	if a.State() == s {
		t.Fatal("Uint64 did not change the state")
	}
}

func TestSkipMatchesDraws(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a, b := New(31), New(31)
		a.Skip(n)
		for i := 0; i < n; i++ {
			b.Uint64()
		}
		if a.State() != b.State() {
			t.Fatalf("Skip(%d) != %d Uint64 draws", n, n)
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams differ after Skip(%d)", n)
		}
	}
}

func TestSkipRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Skip(-1) did not panic")
		}
	}()
	New(1).Skip(-1)
}

func TestDrawCount(t *testing.T) {
	r := New(77)
	start := r.State()
	draws := uint64(0)
	check := func() {
		t.Helper()
		if got := DrawCount(start, r.State()); got != draws {
			t.Fatalf("DrawCount = %d, want %d", got, draws)
		}
	}
	check()
	r.Float64()
	draws++
	check()
	r.Bernoulli(0.5)
	draws++
	check()
	// Mixed draws, including Intn's (possibly multi-draw) rejection loop:
	// count by state delta on a twin stream.
	twin := New(77)
	twin.Skip(int(draws))
	before := twin.State()
	r.Intn(3)
	twin.state = r.state
	draws += DrawCount(before, twin.State())
	check()
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	draws += 100
	check()
}

func TestSkipZeroIsIdentity(t *testing.T) {
	a, b := New(5), New(5)
	a.Skip(0)
	if a.State() != b.State() {
		t.Fatal("Skip(0) changed the state")
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("streams differ after Skip(0)")
	}
}

func TestSkipAccumulates(t *testing.T) {
	a, b := New(9), New(9)
	a.Skip(13)
	a.Skip(29)
	b.Skip(42)
	if a.State() != b.State() {
		t.Fatal("Skip(13)+Skip(29) != Skip(42)")
	}
}

// TestSkipAcrossDeriveNBoundary pins the interaction the prefix-sharing
// trajectory engine depends on: Skip commutes with stream derivation.
// Skipping a parent is equivalent to drawing from it (DeriveN hashes the
// state, so derived children agree), and a derived child skipped to draw
// position k equals a twin child that actually made k draws — even when
// the fresh derivation happens after the parent has moved on.
func TestSkipAcrossDeriveNBoundary(t *testing.T) {
	// Parent side: n draws vs Skip(n) yield identical children.
	a, b := New(123), New(123)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	b.Skip(17)
	if a.DeriveN("trial", 4).State() != b.DeriveN("trial", 4).State() {
		t.Fatal("children of drawn vs skipped parents differ")
	}

	// Child side: the engine's replay pattern. A trial stream consumes k
	// draws scanning the tape; a divergent trial re-derives the same
	// stream afresh and fast-forwards with Skip(k).
	root := New(99)
	live := root.DeriveN("trial", 8)
	const k = 37
	for i := 0; i < k; i++ {
		live.Float64()
	}
	replay := root.DeriveN("trial", 8)
	replay.Skip(k)
	if live.State() != replay.State() {
		t.Fatal("Skip past a DeriveN boundary missed the live stream's position")
	}
	if live.Float64() != replay.Float64() {
		t.Fatal("streams diverge after boundary skip")
	}
}

// TestGoldenInvRoundTrip pins the modular inverse DrawCount is built on:
// golden * goldenInv == 1 (mod 2^64), so counting draws by state delta
// round-trips with Skip for any count, including deltas that wrap the
// 64-bit state space.
func TestGoldenInvRoundTrip(t *testing.T) {
	if golden*goldenInv != 1 {
		t.Fatalf("goldenInv is not the modular inverse: golden*goldenInv = %#x", golden*goldenInv)
	}
	for _, n := range []uint64{0, 1, 2, 1000, 1 << 32, 1<<63 + 12345} {
		r := New(0xDEADBEEF)
		start := r.State()
		r.state += golden * n // Skip takes an int; drive the state directly
		if got := DrawCount(start, r.State()); got != n {
			t.Fatalf("DrawCount after %d draws = %d", n, got)
		}
	}
	// Wraparound: a start state near 2^64 still counts correctly.
	hi := &RNG{state: ^uint64(0) - 3}
	start := hi.State()
	hi.Skip(5)
	if got := DrawCount(start, hi.State()); got != 5 {
		t.Fatalf("DrawCount across uint64 wrap = %d, want 5", got)
	}
}
