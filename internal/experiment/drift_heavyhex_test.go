package experiment

import (
	"reflect"
	"testing"

	"edm/internal/backend"
	"edm/internal/device"
)

// TestDriftCampaignHeavyHex runs the drifting campaign on the 27-qubit
// heavy-hex Falcon with the Clifford-clean profile: the multi-word
// calibration diffs and incremental recompilation must stay
// bit-identical to full rebuilds past 14 qubits, and the fully-Clifford
// compiled workloads must actually execute on the stabilizer engine.
func TestDriftCampaignHeavyHex(t *testing.T) {
	s := QuickDriftSetup()
	s.Cycles = 3
	s.Trials = 512
	s.K = 2
	s.Topo = device.HeavyHexFalcon27()
	s.Profile = device.HeavyHexProfile()
	s.Workloads = []string{"greycode-6", "greycode-12", "bv-6"}
	s.CrossCheckEvery = 2

	backend.ResetEngineStats()
	ResetCampaignCaches()
	inc := RunDrifting(s)

	full := s
	full.Mode = DriftFull
	ResetCampaignCaches()
	fullRes := RunDrifting(full)

	if !reflect.DeepEqual(cellsOf(inc), cellsOf(fullRes)) {
		t.Fatal("heavy-hex incremental campaign cells differ from full recompilation")
	}
	for _, rd := range inc.Rounds {
		if rd.CrossChecked && !rd.PoolsIdentical {
			t.Fatalf("cycle %d: incremental pool != full rebuild on falcon27 (max ESP delta %g)",
				rd.Cycle, rd.MaxESPDelta)
		}
	}
	es := backend.EngineStatsSnapshot()
	if es.StabTrials == 0 || es.StabPrograms == 0 {
		t.Fatalf("engine stats %+v: Clifford-clean heavy-hex campaign never used the tableau", es)
	}
	if es.StabFallbacks != 0 {
		t.Fatalf("engine stats %+v: unexpected statevector fallbacks", es)
	}
}
