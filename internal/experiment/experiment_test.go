package experiment

import (
	"math"
	"testing"

	"edm/internal/device"
)

// tiny returns a very small campaign for fast structural tests. The
// statistically strong assertions live in the targeted tests below and in
// the benchmark harness at full scale.
func tiny() Setup {
	s := Default()
	s.Rounds = 2
	s.Trials = 512
	return s
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty median did not panic")
		}
	}()
	Median(nil)
}

func TestRoundDeterministic(t *testing.T) {
	s := tiny()
	a := s.Round(1)
	b := s.Round(1)
	calA := a.Machine.Calibration()
	calB := b.Machine.Calibration()
	for q := 0; q < 14; q++ {
		if calA.SQErr[q] != calB.SQErr[q] {
			t.Fatal("round calibration not deterministic")
		}
	}
	c := s.Round(2)
	if calA.SQErr[0] == c.Machine.Calibration().SQErr[0] {
		t.Fatal("different rounds share calibration")
	}
	// Compile-time and runtime calibrations differ (drift).
	compCal := a.Compiler.Calibration()
	diff := 0
	for q := 0; q < 14; q++ {
		if compCal.SQErr[q] != calA.SQErr[q] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("no drift between compiler and machine")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(tiny())
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.ESP <= 0 || r.ESP > 1 {
			t.Errorf("%s: ESP = %v", r.Name, r.ESP)
		}
		if r.Compiled.CX < r.Logical.CX {
			t.Errorf("%s: compiled CX %d < logical %d", r.Name, r.Compiled.CX, r.Logical.CX)
		}
		if r.Compiled.M != r.Logical.M {
			t.Errorf("%s: measurement count changed in compilation", r.Name)
		}
		if r.Depth <= 0 {
			t.Errorf("%s: depth = %d", r.Name, r.Depth)
		}
	}
	// BV-6 is a star: routing must add SWAP-derived CX (paper's CX:7 =
	// 4 oracle CX + one SWAP).
	if byName["bv-6"].Compiled.CX <= byName["bv-6"].Logical.CX {
		t.Error("bv-6 compiled without routing overhead")
	}
	// QAOA embeds: no SWAPs, identical CX count (paper: qaoa needs none).
	for _, n := range []string{"qaoa-5", "qaoa-6", "qaoa-7"} {
		if byName[n].Compiled.CX != byName[n].Logical.CX {
			t.Errorf("%s: compiled CX %d != logical %d (expected swap-free)",
				n, byName[n].Compiled.CX, byName[n].Logical.CX)
		}
	}
	// Greycode paper row: CX 5, M 6.
	if byName["greycode-6"].Logical.CX != 5 || byName["greycode-6"].Logical.M != 6 {
		t.Error("greycode logical counts do not match Table 1")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r := Table2()
	if math.Abs(r.DPQBase10-0.046) > 0.001 {
		t.Errorf("D(P||Q) base-10 = %v, paper prints 0.046", r.DPQBase10)
	}
	if math.Abs(r.DQPBase10-0.052) > 0.001 {
		t.Errorf("D(Q||P) base-10 = %v, paper prints 0.052", r.DQPBase10)
	}
	if math.Abs(r.SymKL-(r.DPQ+r.DQP)) > 1e-12 {
		t.Error("SymKL mismatch")
	}
}

func TestFig1(t *testing.T) {
	s := tiny()
	s.Rounds = 4
	s.Trials = 2048
	res := Fig1(s)
	if res.Ideal.P(res.Key) < 1-1e-9 {
		t.Fatal("ideal BV-2 not deterministic")
	}
	if res.Good == nil && res.Bad == nil {
		t.Fatal("no NISQ outputs classified")
	}
	if res.Good != nil && res.GoodIST <= 1 {
		t.Fatalf("good round IST = %v", res.GoodIST)
	}
	if res.Bad != nil && res.BadIST >= 1 {
		t.Fatalf("bad round IST = %v", res.BadIST)
	}
}

func TestFig3Shape(t *testing.T) {
	s := tiny()
	s.Trials = 4096
	res := Fig3(s)
	if res.Outcomes != 64 {
		t.Fatalf("outcome space = %d", res.Outcomes)
	}
	if res.Support < 16 {
		t.Fatalf("support = %d, noise should spread outcomes widely", res.Support)
	}
	if res.PST <= 0 || res.PST >= 0.9 {
		t.Fatalf("PST = %v, expected a heavily degraded output", res.PST)
	}
	// Sorted order is descending.
	for i := 1; i < len(res.Sorted); i++ {
		if res.Sorted[i].P > res.Sorted[i-1].P {
			t.Fatal("Fig3 outcomes not sorted")
		}
	}
}

// TestFig4DiversityGap is the paper's central characterization claim
// (Section 3.2): diverse mappings produce far more divergent outputs than
// repeated runs of one mapping.
func TestFig4DiversityGap(t *testing.T) {
	s := tiny()
	s.Trials = 4096
	res := Fig4(s)
	if len(res.Same) != 8 || len(res.Diverse) != 8 {
		t.Fatalf("matrix sizes: %d, %d", len(res.Same), len(res.Diverse))
	}
	for i := 0; i < 8; i++ {
		if res.Same[i][i] != 0 || res.Diverse[i][i] != 0 {
			t.Fatal("diagonal not zero")
		}
		for j := 0; j < 8; j++ {
			if math.Abs(res.Same[i][j]-res.Same[j][i]) > 1e-9 {
				t.Fatal("same-mapping matrix not symmetric")
			}
		}
	}
	t.Logf("avg same-mapping KL = %.4f, avg diverse KL = %.4f", res.AvgSame, res.AvgDiverse)
	if res.AvgDiverse < 3*res.AvgSame {
		t.Errorf("diversity gap too small: same %.4f vs diverse %.4f", res.AvgSame, res.AvgDiverse)
	}
}

func TestFig6Shape(t *testing.T) {
	s := tiny()
	s.Trials = 4096
	res := Fig6(s)
	if len(res.MappingIST) != 8 || len(res.MappingESP) != 8 {
		t.Fatalf("mapping series length: %d", len(res.MappingIST))
	}
	for i := 1; i < 8; i++ {
		if res.MappingESP[i] > res.MappingESP[i-1]+1e-12 {
			t.Fatal("mappings not in ESP order")
		}
	}
	med := Median(res.MappingIST)
	t.Logf("individual ISTs median %.3f, EDM IST %.3f", med, res.EDMIST)
	if res.EDMIST < med {
		t.Errorf("EDM IST %.3f below the median individual mapping %.3f", res.EDMIST, med)
	}
}

func TestFig8Shape(t *testing.T) {
	s := tiny()
	s.Trials = 4096
	res := Fig8(s)
	if len(res.ESP) != 8 || len(res.PST) != 8 {
		t.Fatal("series length wrong")
	}
	t.Logf("ESP-PST correlation = %.3f, best ESP idx %d, best PST idx %d",
		res.Correlation, res.BestESPIndex, res.BestPSTIndex)
	if res.Correlation < 0 {
		t.Errorf("ESP and PST anticorrelated: %v", res.Correlation)
	}
	if res.BestESPIndex != 0 {
		t.Errorf("BestESPIndex = %d, TopK order should put best ESP first", res.BestESPIndex)
	}
}

func TestFig7Small(t *testing.T) {
	s := tiny()
	rows := Fig7(s)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BaselineIST < 0 || r.EDMIST < 0 || r.PostExecIST < 0 {
			t.Fatalf("%s: negative IST", r.Workload)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	s := tiny()
	res := Fig13(s)
	if !(res.FrontierUncorrelated < res.FrontierQcor10 && res.FrontierQcor10 < res.FrontierQcor50) {
		t.Fatalf("frontiers not ordered: %v %v %v",
			res.FrontierUncorrelated, res.FrontierQcor10, res.FrontierQcor50)
	}
	if len(res.Experimental) != 3*s.Rounds {
		t.Fatalf("experimental points = %d", len(res.Experimental))
	}
	for _, p := range res.Experimental {
		if p.PST < 0 || p.PST > 1 {
			t.Fatalf("PST out of range: %+v", p)
		}
	}
	// Curves increase with Ps.
	for i := 1; i < len(res.PS); i++ {
		if res.AnalyticUncorrelated[i] <= res.AnalyticUncorrelated[i-1] {
			t.Fatal("analytic curve not increasing")
		}
	}
	// At every Ps, the uncorrelated model is at least as strong as the
	// strongly correlated one (allowing MC slack on the last point).
	for i := range res.PS {
		if res.MCQcor50[i] > res.AnalyticUncorrelated[i]*1.2 {
			t.Fatalf("correlated IST above uncorrelated at ps=%v", res.PS[i])
		}
	}
}

// TestIdealProfileSanity: on a noiseless device the baseline gets IST=Inf
// and EDM cannot break a deterministic workload.
func TestIdealProfileSanity(t *testing.T) {
	s := tiny()
	s.Profile = device.IdealProfile()
	s.Drift = 0
	s.Rounds = 1
	rows := RunPolicies(s, []string{"bv-6"}, policySet{})
	if !math.IsInf(rows[0].BaselineIST, 1) || !math.IsInf(rows[0].EDMIST, 1) {
		t.Fatalf("ideal machine ISTs: baseline %v, EDM %v", rows[0].BaselineIST, rows[0].EDMIST)
	}
	if rows[0].BaselinePST < 1-1e-9 || rows[0].EDMPST < 1-1e-9 {
		t.Fatalf("ideal machine PSTs below 1")
	}
}

func TestRunPoliciesSizesAndWEDM(t *testing.T) {
	s := tiny()
	s.Rounds = 1
	rows := RunPolicies(s, []string{"bv-6"}, policySet{sizes: true, wedm: true, postExec: true})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for name, v := range map[string]float64{
		"baseline": r.BaselineIST, "postexec": r.PostExecIST,
		"edm": r.EDMIST, "wedm": r.WEDMIST, "edm2": r.EDM2IST, "edm6": r.EDM6IST,
	} {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("%s IST = %v", name, v)
		}
	}
	if r.BaselinePST <= 0 || r.EDMPST <= 0 {
		t.Error("PST columns missing")
	}
	// Ratio helpers behave.
	if r.EDMOverBaseline() <= 0 || r.WEDMOverBaseline() <= 0 || r.EDMOverPostExec() <= 0 {
		t.Error("ratio helpers returned non-positive values")
	}
}

func TestRunPoliciesUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload accepted")
		}
	}()
	RunPolicies(tiny(), []string{"nope"}, policySet{})
}

func TestRatioGuards(t *testing.T) {
	if got := ratio(0, 0); got != 1 {
		t.Fatalf("ratio(0,0) = %v", got)
	}
	if got := ratio(2, 0); got < 1e6 {
		t.Fatalf("ratio(2,0) = %v", got)
	}
	if got := ratio(3, 2); got != 1.5 {
		t.Fatalf("ratio(3,2) = %v", got)
	}
}

func TestFig6AndFig8SmallConsistency(t *testing.T) {
	// Fig6 and Fig8 both derive from top-8 mappings of bv-6; ESP ordering
	// invariants hold at any scale.
	s := tiny()
	s.Trials = 512
	f6 := Fig6(s)
	if len(f6.MappingESP) != 8 {
		t.Fatalf("fig6 mappings = %d", len(f6.MappingESP))
	}
	f8 := Fig8(s)
	// Fig8 samples across the whole ESP range, so its worst mapping should
	// be no better than fig6's worst top-8 mapping.
	if f8.ESP[len(f8.ESP)-1] > f6.MappingESP[len(f6.MappingESP)-1]+1e-9 {
		t.Errorf("fig8 range (%v) narrower than fig6 top-8 (%v)",
			f8.ESP[len(f8.ESP)-1], f6.MappingESP[len(f6.MappingESP)-1])
	}
}
