package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestCampaignBenchReport regenerates BENCH_campaign.json: the end-to-end
// Fig9 + Fig11 Quick() campaign with the DESIGN.md §9 memoization layer
// against the frozen pre-cache baseline (Setup.NoCache, which replicates
// the PR 3 cost structure: shared compiler tables, no ensemble cache, no
// Round cache, no trial-run cache). It is the engine behind
// scripts/bench_campaign.sh and skips unless EDM_BENCH_CAMPAIGN_OUT
// names the output file.
//
// Acceptance bars recorded in the report:
//   - the cached Fig11 sweep (run after Fig9, as one campaign) is >= 2x
//     faster than the frozen baseline Fig11 sweep;
//   - both figures' tables are bit-identical between the two modes.
func TestCampaignBenchReport(t *testing.T) {
	out := os.Getenv("EDM_BENCH_CAMPAIGN_OUT")
	if out == "" {
		t.Skip("set EDM_BENCH_CAMPAIGN_OUT=path to generate BENCH_campaign.json")
	}

	s := Quick()
	frozen := s
	frozen.NoCache = true

	// Frozen baseline: every cell rebuilds its round, re-runs TopK and
	// re-simulates. Figures run back-to-back the way `edm all` runs them.
	ResetCampaignCaches()
	t0 := time.Now()
	baseFig9 := Fig9(frozen)
	baseFig9Ms := time.Since(t0).Milliseconds()
	t0 = time.Now()
	baseFig11 := Fig11(frozen)
	baseFig11Ms := time.Since(t0).Milliseconds()

	// Cached campaign, cold start: Fig9 pays the builds, Fig11 reuses
	// rounds, ensembles and every (executable, trials, stream) run the
	// two figures share.
	ResetCampaignCaches()
	t0 = time.Now()
	cacheFig9 := Fig9(s)
	cacheFig9Ms := time.Since(t0).Milliseconds()
	t0 = time.Now()
	cacheFig11 := Fig11(s)
	cacheFig11Ms := time.Since(t0).Milliseconds()

	if !reflect.DeepEqual(baseFig9, cacheFig9) {
		t.Fatal("cached Fig9 table differs from frozen baseline")
	}
	if !reflect.DeepEqual(baseFig11, cacheFig11) {
		t.Fatal("cached Fig11 table differs from frozen baseline")
	}

	speedup := func(base, cached int64) float64 {
		if cached <= 0 {
			cached = 1
		}
		return float64(base) / float64(cached)
	}
	fig9Speedup := speedup(baseFig9Ms, cacheFig9Ms)
	fig11Speedup := speedup(baseFig11Ms, cacheFig11Ms)
	totalSpeedup := speedup(baseFig9Ms+baseFig11Ms, cacheFig9Ms+cacheFig11Ms)
	if fig11Speedup < 2 {
		t.Errorf("Fig11 speedup %.2fx < 2x acceptance bar (baseline %dms, cached %dms)",
			fig11Speedup, baseFig11Ms, cacheFig11Ms)
	}

	round := RoundCacheStats()
	_, run := BackendCacheStats()
	report := map[string]any{
		"description": "end-to-end Fig9+Fig11 Quick() campaign: DESIGN.md §9 memoization vs frozen pre-cache baseline (Setup.NoCache)",
		"setup": map[string]any{
			"rounds": s.Rounds, "trials": s.Trials, "k": s.K,
			"seed": s.Seed, "drift": s.Drift, "workloads": len(allNames()),
		},
		"baseline_ms": map[string]int64{"fig9": baseFig9Ms, "fig11": baseFig11Ms, "total": baseFig9Ms + baseFig11Ms},
		"cached_ms":   map[string]int64{"fig9": cacheFig9Ms, "fig11": cacheFig11Ms, "total": cacheFig9Ms + cacheFig11Ms},
		"speedup": map[string]string{
			"fig9":  fmt.Sprintf("%.2fx", fig9Speedup),
			"fig11": fmt.Sprintf("%.2fx", fig11Speedup),
			"total": fmt.Sprintf("%.2fx", totalSpeedup),
		},
		"tables_bit_identical": true,
		"cache_stats": map[string]any{
			"round":       round,
			"backend_run": run,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil && filepath.Dir(out) != "." {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline fig9 %dms fig11 %dms; cached fig9 %dms fig11 %dms; fig11 speedup %.2fx",
		baseFig9Ms, baseFig11Ms, cacheFig9Ms, cacheFig11Ms, fig11Speedup)
}
