package experiment

import (
	"runtime"
	"sync"
)

// runCells executes f(0..n-1) concurrently and returns when all cells are
// done. Experiment cells — one (workload, round) of a campaign — are
// orchestration: each one compiles and simulates through layers whose
// leaf workers gate on the process-wide compute-token pool, so the
// fan-out here is bounded by a plain local semaphore instead (holding a
// token while waiting on token-gated leaves would deadlock the pool).
//
// Cells must be independent and write only per-index results; every RNG
// stream a cell uses must be derived from the cell's own index or labels.
// Under that contract the aggregated output is bit-identical to the
// serial loop the caller replaced, for any GOMAXPROCS. If cells panic,
// the lowest-index panic is re-raised in the caller, matching what a
// serial loop would have surfaced first.
func runCells(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if runtime.GOMAXPROCS(0) < 2 || n == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	panics := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			f(i)
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
