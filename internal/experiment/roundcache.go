package experiment

import (
	"math"

	"edm/internal/backend"
	"edm/internal/mapper"
	"edm/internal/memo"
)

// The campaign memoization layer (DESIGN.md §9): every figure of a
// campaign revisits the same rounds — Fig7, Fig9 and Fig11 each call
// Setup.Round(i) for every (workload, round) cell — and before this
// cache each cell regenerated the calibration, re-drifted it and rebuilt
// the runner. Rounds are pure functions of (Setup fingerprint, round
// index), so one memoized instance serves every cell, and the machines
// inside cached rounds carry the backend trial-run cache so repeated
// (executable, trials, stream) runs across figures simulate once.

// roundCacheCap bounds the Round cache. A campaign touches Rounds (10 at
// paper scale) entries per setup; 64 leaves room for several setups —
// e.g. tests sweeping seeds — before FIFO eviction starts.
const roundCacheCap = 64

var (
	roundCtr   memo.Counters
	roundCache = memo.NewShared[*Round](roundCacheCap, &roundCtr)
)

// fingerprint identifies everything Round materialization depends on:
// the seed, the drift magnitude, and the machine definition. Rounds,
// Trials and K are deliberately excluded — they scale how rounds are
// *used*, not what Round(i) builds — so setups differing only in those
// share cached rounds.
func (s Setup) fingerprint() uint64 {
	h := memo.Mix(memo.Seed(), s.Seed)
	h = memo.Mix(h, math.Float64bits(s.Drift))
	h = memo.Mix(h, s.Topo.Fingerprint())
	h = memo.Mix(h, uint64(s.Engine))
	return memo.Mix(h, s.Profile.Fingerprint())
}

// RoundCacheStats snapshots the Round cache counters.
func RoundCacheStats() memo.Stats { return roundCtr.Stats() }

// BackendCacheStats aggregates the compiled-program and trial-run cache
// counters across every machine held by the Round cache, so cmd/edm can
// print one backend line per campaign.
func BackendCacheStats() (prog backend.CacheStats, run memo.Stats) {
	roundCache.Each(func(_ uint64, r *Round) {
		ps := r.Machine.CacheStats()
		prog.Hits += ps.Hits
		prog.Misses += ps.Misses
		prog.Evictions += ps.Evictions
		prog.Entries += ps.Entries
		rs := r.Machine.RunCacheStats()
		run.Hits += rs.Hits
		run.Misses += rs.Misses
		run.Waits += rs.Waits
		run.Evictions += rs.Evictions
		run.Entries += rs.Entries
	})
	return prog, run
}

// ResetCampaignCaches drops every campaign-level cache: rounds (and with
// them the per-machine run caches), compilers and their ensemble caches.
// Tests and benchmarks call it to measure cold starts.
func ResetCampaignCaches() {
	roundCache.Reset()
	mapper.ResetCompilerCache()
}
