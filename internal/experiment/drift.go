package experiment

import (
	"fmt"
	"math"
	"time"

	"edm/internal/backend"
	"edm/internal/circuit"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/memo"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// The drifting campaign models the deployment the paper's Section 5.3
// motivates but the round-based protocol sidesteps: one machine tracked
// through successive calibration windows, where each window moves only a
// few qubits and links appreciably (the rest jitter within measurement
// noise). Instead of recompiling every workload from scratch each window
// — today's cost — the campaign threads the sequence of calibrations
// through mapper.Tracking, which diffs consecutive windows and upgrades
// cached candidate pools incrementally (DESIGN.md §11). A cross-check
// mode periodically runs the full recompilation alongside and asserts
// the incremental pool identical (checked mode) or reports the
// routed-ESP delta (fast mode).

// DriftMode selects the recompilation strategy of a drifting campaign.
type DriftMode int

const (
	// DriftIncremental tracks the device with RecompileChecked: dry-run
	// re-route checks keep results bit-identical to full recompilation.
	DriftIncremental DriftMode = iota
	// DriftIncrementalFast tracks with RecompileFast: footprint-trusted,
	// approximate, fastest.
	DriftIncrementalFast
	// DriftFull recompiles every workload from scratch each cycle —
	// today's cost structure, the baseline the speedup is measured
	// against.
	DriftFull
)

func (m DriftMode) String() string {
	switch m {
	case DriftIncremental:
		return "incremental"
	case DriftIncrementalFast:
		return "incremental-fast"
	case DriftFull:
		return "full"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DriftSetup fixes the scale and randomness of a drifting campaign.
type DriftSetup struct {
	Seed   uint64
	Cycles int // calibration windows, including the cold cycle 0
	Trials int
	K      int

	// Tol is the relative-change tolerance fed to the calibration diff;
	// 0 degenerates to full invalidation on any bit of change.
	Tol float64
	// HitQubits/HitEdges is how many qubits and links drift appreciably
	// (by Scale) per window; everything else jitters by Jitter.
	HitQubits int
	HitEdges  int
	Scale     float64
	Jitter    float64

	// Drift scales the within-window runtime wander, as in Setup.
	Drift float64

	Topo    *device.Topology
	Profile device.Profile
	// Workloads names the circuits tracked across the campaign.
	Workloads []string

	Mode DriftMode
	// CrossCheckEvery > 0 runs the incremental-vs-full cross-check on
	// every CrossCheckEvery-th cycle (cycle 0 excluded: nothing has been
	// upgraded yet). Ignored in DriftFull mode.
	CrossCheckEvery int
}

// DefaultDriftSetup returns the paper-scale drifting campaign on the
// Figure 13 workload set.
func DefaultDriftSetup() DriftSetup {
	return DriftSetup{
		Seed:            2019,
		Cycles:          10,
		Trials:          4096,
		K:               4,
		Tol:             1e-3,
		HitQubits:       2,
		HitEdges:        2,
		Scale:           0.04,
		Jitter:          2e-4,
		Drift:           0.2,
		Topo:            device.Melbourne(),
		Profile:         device.MelbourneProfile(),
		Workloads:       []string{"qaoa-6", "bv-6", "greycode-6"},
		Mode:            DriftIncremental,
		CrossCheckEvery: 5,
	}
}

// QuickDriftSetup returns a reduced-scale drifting campaign for smoke
// tests and CI.
func QuickDriftSetup() DriftSetup {
	s := DefaultDriftSetup()
	s.Cycles = 5
	s.Trials = 1024
	s.CrossCheckEvery = 2
	return s
}

// DriftCell is one workload's outcome in one calibration window.
type DriftCell struct {
	Workload    string
	BaselinePST float64
	BaselineIST float64
	EDMPST      float64
	EDMIST      float64
	// CountsKey fingerprints the baseline and ensemble output
	// distributions bit-for-bit; identical keys across modes prove the
	// campaigns executed identical circuits.
	CountsKey uint64
}

// DriftRound is one calibration window of the campaign.
type DriftRound struct {
	Cycle int
	// Diff summarizes the calibration change from the previous window
	// (zero value on cycle 0).
	Diff device.DiffStats
	// Recompile is this window's incremental-recompilation counter delta
	// (zero value in DriftFull mode).
	Recompile mapper.RecompileStats
	// Survival is the fraction of cached candidates that kept their
	// structure this window.
	Survival float64
	// CompileMs is the wall time of the window's compile phase (every
	// workload, k = 1 and k = K).
	CompileMs float64
	Cells     []DriftCell
	// CrossChecked reports that this window ran the incremental-vs-full
	// comparison; PoolsIdentical and MaxESPDelta hold its verdict.
	CrossChecked   bool
	PoolsIdentical bool
	MaxESPDelta    float64
}

// DriftResult is the outcome of a drifting campaign.
type DriftResult struct {
	Mode   DriftMode
	Tol    float64
	Rounds []DriftRound
	// CompileMsTotal sums every window's compile phase; CompileMsSteady
	// excludes the cold cycle 0, isolating the per-window recompilation
	// cost the incremental path optimizes.
	CompileMsTotal  float64
	CompileMsSteady float64
	// Stats is the campaign's aggregate recompilation counters.
	Stats mapper.RecompileStats
}

// distKey folds a distribution into a running fingerprint, outcome by
// outcome in deterministic order.
func distKey(h uint64, d *dist.Dist) uint64 {
	h = memo.Mix(h, uint64(d.N()))
	for _, o := range d.Sorted() {
		h = memo.Mix(h, o.Value.Uint64())
		h = memo.Mix(h, math.Float64bits(o.P))
	}
	return h
}

// RunDrifting executes a drifting campaign. Every RNG stream is derived
// from the seed, the cycle index and the workload name only — never from
// the mode — so the run phase of two campaigns that compiled identical
// circuits produces bit-identical cells, which is what makes the
// incremental-vs-full identity checkable end to end.
func RunDrifting(s DriftSetup) DriftResult {
	ws := make([]workloads.Workload, len(s.Workloads))
	for i, name := range s.Workloads {
		w, ok := workloads.ByName(name)
		if !ok {
			panic(fmt.Sprintf("experiment: unknown workload %q", name))
		}
		ws[i] = w
	}

	root := rng.New(s.Seed).Derive("drift-campaign")
	cal := device.Generate(s.Topo, s.Profile, root.Derive("calibration"))

	var tr *mapper.Tracking
	var comp *mapper.Compiler
	switch s.Mode {
	case DriftIncremental:
		tr = mapper.NewTracking(cal, mapper.RecompileChecked)
	case DriftIncrementalFast:
		tr = mapper.NewTracking(cal, mapper.RecompileFast)
	default:
		comp = mapper.CachedCompiler(cal)
	}
	topK := func(c *circuit.Circuit, k int) ([]*mapper.Executable, error) {
		if tr != nil {
			return tr.TopK(c, k)
		}
		return comp.TopK(c, k)
	}

	out := DriftResult{Mode: s.Mode, Tol: s.Tol, Rounds: make([]DriftRound, 0, s.Cycles)}
	var prevStats mapper.RecompileStats
	for cycle := 0; cycle < s.Cycles; cycle++ {
		round := DriftRound{Cycle: cycle}
		if cycle > 0 {
			next := cal.DriftLocal(s.HitQubits, s.HitEdges, s.Scale, s.Jitter, root.DeriveN("cycle", cycle))
			if tr != nil {
				round.Diff = tr.Advance(next, s.Tol).Stats
			} else {
				round.Diff = cal.DiffStats(next, s.Tol)
				comp = mapper.CachedCompiler(next)
			}
			cal = next
		}
		mach := backend.New(cal.Drift(s.Drift, root.DeriveN("runtime", cycle)))

		// Compile phase, timed: this is the per-window cost the
		// incremental path attacks. The baseline mapping is ensemble
		// member 0 — selectDiverse always seats the pool head there
		// (pinned by TestTopKPrefixStability), so both modes obtain it
		// from the same pool-ranked path and the comparison measures pool
		// construction, not the separate k = 1 branch-and-bound.
		// Workloads compile one after another: the pool pipeline is
		// internally parallel already, and racing three compiles against
		// each other only adds contention noise to the timing this
		// experiment exists to measure.
		comps := make([][]*mapper.Executable, len(ws))
		start := time.Now()
		for i := range ws {
			ens, err := topK(ws[i].Circuit, s.K)
			if err != nil {
				panic(err)
			}
			comps[i] = ens
		}
		round.CompileMs = float64(time.Since(start)) / float64(time.Millisecond)
		out.CompileMsTotal += round.CompileMs
		if cycle > 0 {
			out.CompileMsSteady += round.CompileMs
		}

		if tr != nil {
			cur := tr.Stats()
			round.Recompile = cur.Sub(prevStats)
			prevStats = cur
		}
		round.Survival = round.Recompile.Survival()

		if tr != nil && s.CrossCheckEvery > 0 && cycle > 0 && cycle%s.CrossCheckEvery == 0 {
			round.CrossChecked = true
			round.PoolsIdentical = true
			for _, w := range ws {
				identical, delta, err := tr.CrossCheck(w.Circuit)
				if err != nil {
					panic(err)
				}
				round.PoolsIdentical = round.PoolsIdentical && identical
				round.MaxESPDelta = math.Max(round.MaxESPDelta, delta)
			}
		}

		// Run phase: streams derive from (seed, cycle, workload) only.
		cc := comp
		if tr != nil {
			cc = tr.Compiler()
		}
		runner := core.NewRunner(cc, mach)
		round.Cells = make([]DriftCell, len(ws))
		runCells(len(ws), func(i int) {
			w := ws[i]
			cr := root.DeriveN("cycle-run", cycle).Derive(w.Name)
			bd, err := mach.RunDist(comps[i][0].Circuit, s.Trials, cr.Derive("baseline"))
			if err != nil {
				panic(err)
			}
			res, err := runner.RunExecutables(comps[i],
				core.Config{K: s.K, Trials: s.Trials, Weighting: core.WeightUniform},
				cr.Derive("edm"))
			if err != nil {
				panic(err)
			}
			key := distKey(memo.Seed(), bd)
			key = distKey(key, res.Merged)
			round.Cells[i] = DriftCell{
				Workload:    w.Name,
				BaselinePST: bd.PST(w.Correct),
				BaselineIST: bd.IST(w.Correct),
				EDMPST:      res.Merged.PST(w.Correct),
				EDMIST:      res.Merged.IST(w.Correct),
				CountsKey:   key,
			}
		})
		out.Rounds = append(out.Rounds, round)
	}
	if tr != nil {
		out.Stats = tr.Stats()
	}
	return out
}
