package experiment

import (
	"reflect"
	"runtime"
	"testing"
)

// campaignSetup is the reduced-scale campaign the determinism tests
// sweep: the full Quick() protocol shape (every workload, every policy)
// at a trial/round budget that keeps the -race run affordable.
func campaignSetup() Setup {
	s := Quick()
	s.Rounds = 2
	s.Trials = 512
	return s
}

// TestCampaignCachedMatchesUncachedSerial is the acceptance gate for the
// campaign memoization layer (DESIGN.md §9): a fully cached, concurrent
// Fig7/Fig9/Fig11 sweep must produce tables byte-identical to the frozen
// uncached path run serially at GOMAXPROCS=1. Run under -race (scripts/
// ci.sh does) it also checks that sweep cells sharing cached rounds,
// ensembles and trial runs do so without data races.
func TestCampaignCachedMatchesUncachedSerial(t *testing.T) {
	s := campaignSetup()
	uncached := s
	uncached.NoCache = true

	old := runtime.GOMAXPROCS(1)
	wantFig7 := Fig7(uncached)
	wantFig9 := Fig9(uncached)
	wantFig11 := Fig11(uncached)

	runtime.GOMAXPROCS(4)
	ResetCampaignCaches()
	gotFig7 := Fig7(s)
	gotFig9 := Fig9(s)
	gotFig11 := Fig11(s)
	runtime.GOMAXPROCS(old)

	if !reflect.DeepEqual(gotFig7, wantFig7) {
		t.Error("cached concurrent Fig7 differs from uncached serial")
	}
	if !reflect.DeepEqual(gotFig9, wantFig9) {
		t.Error("cached concurrent Fig9 differs from uncached serial")
	}
	if !reflect.DeepEqual(gotFig11, wantFig11) {
		t.Error("cached concurrent Fig11 differs from uncached serial")
	}
	if st := RoundCacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("round cache never exercised: %+v", st)
	}
}

// TestCampaignRepeatRunIdentical checks the fully hot path: re-running a
// figure against a warm cache returns the same tables, and the repeat
// sweep is answered almost entirely from the trial-run cache.
func TestCampaignRepeatRunIdentical(t *testing.T) {
	s := campaignSetup()
	ResetCampaignCaches()
	first := Fig11(s)
	_, runBefore := BackendCacheStats()
	second := Fig11(s)
	_, runAfter := BackendCacheStats()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeat Fig11 against a warm cache differs")
	}
	if runAfter.Hits <= runBefore.Hits {
		t.Fatalf("repeat sweep gained no run-cache hits: before %+v after %+v", runBefore, runAfter)
	}
	if runAfter.Misses != runBefore.Misses {
		t.Fatalf("repeat sweep re-simulated: before %+v after %+v", runBefore, runAfter)
	}
}
