package experiment

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunPoliciesDeterministicAcrossWorkers is the bit-identical contract
// of the parallel sweep: the policy tables must not depend on GOMAXPROCS
// or on scheduling order between two runs at the same parallelism.
func TestRunPoliciesDeterministicAcrossWorkers(t *testing.T) {
	s := tiny()
	names := []string{"greycode-6", "qaoa-5"}
	set := policySet{postExec: true, wedm: true}

	prev := runtime.GOMAXPROCS(1)
	serial := RunPolicies(s, names, set)
	runtime.GOMAXPROCS(4)
	par1 := RunPolicies(s, names, set)
	par2 := RunPolicies(s, names, set)
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(serial, par1) {
		t.Fatalf("parallel sweep differs from serial:\nserial: %+v\npar:    %+v", serial, par1)
	}
	if !reflect.DeepEqual(par1, par2) {
		t.Fatalf("two parallel sweeps differ:\n1: %+v\n2: %+v", par1, par2)
	}
}

func TestRunCellsPanicOrder(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer func() {
		if r := recover(); r != "cell-1" {
			t.Fatalf("recovered %v, want cell-1", r)
		}
	}()
	runCells(4, func(i int) {
		if i == 1 || i == 3 {
			panic("cell-" + string(rune('0'+i)))
		}
	})
}
