package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestDriftBenchReport regenerates BENCH_drift.json: the drifting
// campaign (DefaultDriftSetup, Figure 13 workload set) compiled
// incrementally (DESIGN.md §11) against full per-cycle recompilation, at
// tolerances 0, 1e-3 and 1e-2. It is the engine behind
// scripts/bench_drift.sh and skips unless EDM_BENCH_DRIFT_OUT names the
// output file.
//
// Acceptance bars recorded in the report:
//   - the checked incremental campaign's steady-state compile time
//     (cycles >= 1; cycle 0 is the cold build both modes pay) is >= 2x
//     faster than full recompilation at tol = 1e-3;
//   - cells (PSTs, ISTs, output-distribution fingerprints) are
//     bit-identical between the two modes at every tolerance;
//   - per-round pool survival is reported for each tolerance.
func TestDriftBenchReport(t *testing.T) {
	out := os.Getenv("EDM_BENCH_DRIFT_OUT")
	if out == "" {
		t.Skip("set EDM_BENCH_DRIFT_OUT=path to generate BENCH_drift.json")
	}

	s := DefaultDriftSetup()

	full := s
	full.Mode = DriftFull
	ResetCampaignCaches()
	fullRes := RunDrifting(full)
	fullCells := cellsOf(fullRes)

	type tolRow struct {
		Tol            float64   `json:"tol"`
		SteadyMs       float64   `json:"steady_compile_ms"`
		TotalMs        float64   `json:"total_compile_ms"`
		Speedup        string    `json:"steady_speedup_vs_full"`
		SurvivalPerRnd []float64 `json:"pool_survival_per_round"`
		CellsIdentical bool      `json:"cells_identical_to_full"`
		PoolsIdentical bool      `json:"crosscheck_pools_identical"`
		Stats          any       `json:"recompile_stats"`
	}
	var rows []tolRow
	var speedupAt1e3 float64
	for _, tol := range []float64{0, 1e-3, 1e-2} {
		inc := s
		inc.Tol = tol
		ResetCampaignCaches()
		res := RunDrifting(inc)

		identical := reflect.DeepEqual(cellsOf(res), fullCells)
		if !identical {
			t.Errorf("tol=%g: incremental cells differ from full recompilation", tol)
		}
		poolsOK := true
		var survival []float64
		for _, rd := range res.Rounds {
			if rd.Cycle == 0 {
				continue
			}
			survival = append(survival, rd.Survival)
			if rd.CrossChecked && !rd.PoolsIdentical {
				poolsOK = false
			}
		}
		if !poolsOK {
			t.Errorf("tol=%g: cross-check found a non-identical pool", tol)
		}
		sp := fullRes.CompileMsSteady / res.CompileMsSteady
		if tol == 1e-3 {
			speedupAt1e3 = sp
		}
		rows = append(rows, tolRow{
			Tol:            tol,
			SteadyMs:       res.CompileMsSteady,
			TotalMs:        res.CompileMsTotal,
			Speedup:        fmt.Sprintf("%.2fx", sp),
			SurvivalPerRnd: survival,
			CellsIdentical: identical,
			PoolsIdentical: poolsOK,
			Stats:          res.Stats,
		})
	}
	if speedupAt1e3 < 2 {
		t.Errorf("steady-state speedup %.2fx < 2x acceptance bar at tol=1e-3 (full %.1fms)",
			speedupAt1e3, fullRes.CompileMsSteady)
	}

	// The fast mode rides along for context: same campaign at tol = 1e-3
	// without the re-route checks.
	fast := s
	fast.Mode = DriftIncrementalFast
	ResetCampaignCaches()
	fastRes := RunDrifting(fast)
	var fastDelta float64
	for _, rd := range fastRes.Rounds {
		if rd.CrossChecked && rd.MaxESPDelta > fastDelta {
			fastDelta = rd.MaxESPDelta
		}
	}

	report := map[string]any{
		"description": "drifting campaign (DESIGN.md §11): incremental recompilation vs full per-cycle recompilation",
		"setup": map[string]any{
			"seed": s.Seed, "cycles": s.Cycles, "trials": s.Trials, "k": s.K,
			"hit_qubits": s.HitQubits, "hit_edges": s.HitEdges,
			"scale": s.Scale, "jitter": s.Jitter, "drift": s.Drift,
			"workloads": s.Workloads,
		},
		"full_recompile_ms": map[string]float64{
			"steady": fullRes.CompileMsSteady, "total": fullRes.CompileMsTotal,
		},
		"incremental": rows,
		"incremental_fast": map[string]any{
			"tol": fast.Tol, "steady_compile_ms": fastRes.CompileMsSteady,
			"steady_speedup_vs_full": fmt.Sprintf("%.2fx", fullRes.CompileMsSteady/fastRes.CompileMsSteady),
			"max_routed_esp_delta":   fastDelta,
			"recompile_stats":        fastRes.Stats,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil && filepath.Dir(out) != "." {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("full steady %.1fms; incremental tol=1e-3 steady %.1fms (%.2fx)",
		fullRes.CompileMsSteady, rows[1].SteadyMs, speedupAt1e3)
}
