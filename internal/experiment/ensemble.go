package experiment

import (
	"fmt"
	"math"

	"edm/internal/core"
	"edm/internal/dist"
	"edm/internal/workloads"
)

// Fig6Result reproduces Figure 6: IST of BV-6 under each of the top-8
// mappings A..H individually (full trial budget each) and under the
// ensemble of the first four (quarter budget each).
type Fig6Result struct {
	MappingIST []float64 // A..H
	MappingESP []float64
	EDMIST     float64
}

// Fig6 runs the Figure 6 experiment on round 0 of the campaign.
func Fig6(s Setup) Fig6Result {
	w, _ := workloads.ByName("bv-6")
	r := s.Round(0)
	execs, err := r.Compiler.TopK(w.Circuit, 8)
	if err != nil {
		panic(err)
	}
	out := Fig6Result{
		MappingIST: make([]float64, len(execs)),
		MappingESP: make([]float64, len(execs)),
	}
	runCells(len(execs), func(i int) {
		e := execs[i]
		d, err := r.Machine.RunDist(e.Circuit, s.Trials, r.RNG.DeriveN("fig6", i))
		if err != nil {
			panic(err)
		}
		out.MappingIST[i] = d.IST(w.Correct)
		out.MappingESP[i] = e.ESP
	})
	res, err := r.Runner.RunExecutables(execs[:4],
		core.Config{K: 4, Trials: s.Trials, Weighting: core.WeightUniform},
		r.RNG.Derive("fig6-edm"))
	if err != nil {
		panic(err)
	}
	out.EDMIST = res.Merged.IST(w.Correct)
	return out
}

// PolicyRow is one workload's median-round comparison across policies;
// shared by Figures 7, 9 and 11.
type PolicyRow struct {
	Workload string
	// Absolute median ISTs.
	BaselineIST float64 // single best mapping at compile time
	PostExecIST float64 // single best mapping post execution
	EDMIST      float64
	WEDMIST     float64
	// EDM-2 / EDM-6 for the ensemble-size sensitivity figure.
	EDM2IST float64
	EDM6IST float64
	// Median PSTs for the baseline and EDM (used by the PST discussion).
	BaselinePST float64
	EDMPST      float64
}

// Improvement helpers (guarded against a zero baseline).

func ratio(num, den float64) float64 {
	if den <= 0 {
		if num <= 0 {
			return 1
		}
		return num / 1e-9
	}
	return num / den
}

// EDMOverBaseline returns the Figure 7/11 bar: EDM IST relative to the
// compile-time single best mapping.
func (p PolicyRow) EDMOverBaseline() float64 { return ratio(p.EDMIST, p.BaselineIST) }

// EDMOverPostExec returns EDM IST relative to the post-execution best
// single mapping.
func (p PolicyRow) EDMOverPostExec() float64 { return ratio(p.EDMIST, p.PostExecIST) }

// WEDMOverBaseline returns the Figure 11 WEDM bar.
func (p PolicyRow) WEDMOverBaseline() float64 { return ratio(p.WEDMIST, p.BaselineIST) }

// policySet selects which policies RunPolicies executes.
type policySet struct {
	postExec bool
	wedm     bool
	sizes    bool // EDM-2 and EDM-6
}

// policyCell is the outcome of one (workload, round) cell of a sweep.
type policyCell struct {
	base, post, edm, wedm, edm2, edm6, basePST, edmPST float64
}

// RunPolicies executes the Section 4.2 protocol for the named workloads:
// for every round, the baseline and each requested policy run
// back-to-back with the full trial budget, and the medians across rounds
// are reported per workload.
//
// The (workload x round) cells are mutually independent — each
// materializes its own Round and derives every RNG stream from the
// round's root and the workload name, exactly as the serial loop this
// replaced did — so they run concurrently via runCells and the reported
// tables are bit-identical to a serial sweep.
func RunPolicies(s Setup, names []string, set policySet) []PolicyRow {
	for _, name := range names {
		if _, ok := workloads.ByName(name); !ok {
			panic(fmt.Sprintf("experiment: unknown workload %q", name))
		}
	}
	cells := make([]policyCell, len(names)*s.Rounds)
	runCells(len(cells), func(ci int) {
		name := names[ci/s.Rounds]
		w, _ := workloads.ByName(name)
		r := s.Round(ci % s.Rounds)
		seed := r.RNG.Derive("policies-" + name)
		cell := &cells[ci]

		bm, err := r.Runner.RunSingleBest(w.Circuit, s.Trials, seed.Derive("base"))
		if err != nil {
			panic(err)
		}
		cell.base = bm.Output.IST(w.Correct)
		cell.basePST = bm.Output.PST(w.Correct)

		res, err := r.Runner.Run(w.Circuit,
			core.Config{K: s.K, Trials: s.Trials, Weighting: core.WeightUniform},
			seed.Derive("edm"))
		if err != nil {
			panic(err)
		}
		cell.edm = res.Merged.IST(w.Correct)
		cell.edmPST = res.Merged.PST(w.Correct)

		if set.wedm {
			wd := dist.WeightedMerge(memberDists(res), core.MergeWeights(memberDists(res), core.WeightDivergence))
			cell.wedm = wd.IST(w.Correct)
		}
		if set.postExec {
			pm, err := r.Runner.BestPostExec(res, w.Correct, s.Trials, seed.Derive("post"))
			if err != nil {
				panic(err)
			}
			cell.post = pm.Output.IST(w.Correct)
		}
		if set.sizes {
			for _, k := range []int{2, 6} {
				resK, err := r.Runner.Run(w.Circuit,
					core.Config{K: k, Trials: s.Trials, Weighting: core.WeightUniform},
					seed.DeriveN("edm-k", k))
				if err != nil {
					panic(err)
				}
				if k == 2 {
					cell.edm2 = resK.Merged.IST(w.Correct)
				} else {
					cell.edm6 = resK.Merged.IST(w.Correct)
				}
			}
		}
	})

	rows := make([]PolicyRow, 0, len(names))
	for wi, name := range names {
		per := cells[wi*s.Rounds : (wi+1)*s.Rounds]
		pick := func(get func(policyCell) float64) []float64 {
			xs := make([]float64, len(per))
			for i, c := range per {
				xs[i] = get(c)
			}
			return xs
		}
		row := PolicyRow{
			Workload:    name,
			BaselineIST: Median(pick(func(c policyCell) float64 { return c.base })),
			EDMIST:      Median(pick(func(c policyCell) float64 { return c.edm })),
			BaselinePST: Median(pick(func(c policyCell) float64 { return c.basePST })),
			EDMPST:      Median(pick(func(c policyCell) float64 { return c.edmPST })),
		}
		if set.postExec {
			row.PostExecIST = Median(pick(func(c policyCell) float64 { return c.post }))
		}
		if set.wedm {
			row.WEDMIST = Median(pick(func(c policyCell) float64 { return c.wedm }))
		}
		if set.sizes {
			row.EDM2IST = Median(pick(func(c policyCell) float64 { return c.edm2 }))
			row.EDM6IST = Median(pick(func(c policyCell) float64 { return c.edm6 }))
		}
		rows = append(rows, row)
	}
	return rows
}

func memberDists(res *core.Result) []*dist.Dist { return res.MemberOutputs() }

// Fig7 reproduces Figure 7: EDM IST against the compile-time and
// post-execution single best mappings, for BV and QAOA.
func Fig7(s Setup) []PolicyRow {
	return RunPolicies(s, []string{"bv-6", "bv-7", "qaoa-5", "qaoa-6", "qaoa-7"},
		policySet{postExec: true})
}

// Fig9 reproduces Figure 9: ensemble-size sensitivity (EDM-2/4/6) across
// all workloads.
func Fig9(s Setup) []PolicyRow {
	return RunPolicies(s, allNames(), policySet{sizes: true})
}

// Fig11 reproduces Figure 11: EDM and WEDM IST improvement over the
// baseline across all workloads.
func Fig11(s Setup) []PolicyRow {
	return RunPolicies(s, allNames(), policySet{postExec: true, wedm: true})
}

func allNames() []string {
	all := workloads.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// Fig8Result reproduces Figure 8: compile-time ESP against run-time PST
// for the top-8 mappings of BV-6.
type Fig8Result struct {
	ESP []float64
	PST []float64
	// Pearson correlation between the two series; the paper observes a
	// good but imperfect correlation.
	Correlation float64
	// BestESPIndex and BestPSTIndex identify the compile-time favourite
	// and the run-time winner (paper: Map-A estimated best, Map-C actual
	// best).
	BestESPIndex int
	BestPSTIndex int
}

// Fig8 runs the ESP-vs-PST comparison on round 0. To reproduce the
// figure's point — ESP estimated at compile time tracks, but does not
// perfectly predict, run-time PST — the eight mappings are sampled evenly
// across the full ESP range of distinct placements rather than being the
// near-tied top 8.
func Fig8(s Setup) Fig8Result {
	w, _ := workloads.ByName("bv-6")
	r := s.Round(0)
	all, err := r.Compiler.Placements(w.Circuit, 0)
	if err != nil {
		panic(err)
	}
	execs := all
	if len(all) > 8 {
		execs = execs[:0:0]
		for i := 0; i < 8; i++ {
			execs = append(execs, all[i*(len(all)-1)/7])
		}
	}
	out := Fig8Result{
		ESP: make([]float64, len(execs)),
		PST: make([]float64, len(execs)),
	}
	runCells(len(execs), func(i int) {
		e := execs[i]
		d, err := r.Machine.RunDist(e.Circuit, s.Trials, r.RNG.DeriveN("fig8", i))
		if err != nil {
			panic(err)
		}
		out.ESP[i] = e.ESP
		out.PST[i] = d.PST(w.Correct)
	})
	out.Correlation = pearson(out.ESP, out.PST)
	out.BestESPIndex = argmax(out.ESP)
	out.BestPSTIndex = argmax(out.PST)
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}
