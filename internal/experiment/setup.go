// Package experiment reproduces every table and figure of the paper's
// evaluation on the simulated device. Each experiment is a pure function
// of a Setup, so the CLI (cmd/edm), the benchmark harness (bench_test.go)
// and the tests all share one implementation.
//
// The protocol follows paper Section 4.2: each experiment round draws a
// fresh calibration (the machine between two calibration cycles), the
// compiler sees that calibration while the machine runs a drifted copy,
// the baseline and the proposed policies execute back-to-back within the
// round with the full trial budget each, and the median round is reported.
package experiment

import (
	"sort"

	"edm/internal/backend"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/memo"
	"edm/internal/rng"
)

// Setup fixes the scale and randomness of an experimental campaign.
type Setup struct {
	// Seed makes the entire campaign reproducible.
	Seed uint64
	// Rounds is the number of calibration rounds; the paper uses 10.
	Rounds int
	// Trials is the per-policy trial budget per round; the paper uses
	// 16384 (split across members for ensembles).
	Trials int
	// K is the default ensemble size (paper default 4).
	K int
	// Drift scales how far the runtime calibration wanders from the
	// compile-time data within a round.
	Drift float64
	// Topo and Profile define the simulated machine.
	Topo    *device.Topology
	Profile device.Profile
	// NoCache disables the campaign memoization layer (Round cache,
	// ensemble cache, trial-run cache): every Round call materializes a
	// fresh machine and an uncached compiler view, replicating the cost
	// structure the caches were benchmarked against. Results are
	// bit-identical either way; benchmarks use it as the frozen baseline.
	NoCache bool
	// Engine selects the machine's trajectory engine. The zero value is
	// the default auto engine (stabilizer tableau for fully-Clifford
	// schedules, prefix-sharing statevector otherwise); benchmarks pin
	// backend.EngineStatevector so frozen baselines keep measuring
	// statevector work.
	Engine backend.TrajectoryEngine
}

// Default returns the paper-scale setup: IBMQ-14, 16384 trials, 10
// rounds, 4-member ensembles.
func Default() Setup {
	return Setup{
		Seed:    2019,
		Rounds:  10,
		Trials:  16384,
		K:       4,
		Drift:   0.2,
		Topo:    device.Melbourne(),
		Profile: device.MelbourneProfile(),
	}
}

// Quick returns a reduced-scale setup for smoke tests and CI: same
// machine, fewer rounds and trials.
func Quick() Setup {
	s := Default()
	s.Rounds = 3
	s.Trials = 2048
	return s
}

// Round holds the per-round execution context: the compiler that saw the
// calibration-cycle data and the machine running the drifted truth.
type Round struct {
	Index    int
	Compiler *mapper.Compiler
	Machine  *backend.Machine
	Runner   *core.Runner
	// RNG is the round's root randomness; derive sub-streams per policy.
	RNG *rng.RNG
}

// Round materializes round i of the campaign. Rounds are pure functions
// of (Setup, i), so every cell of a sweep that visits round i shares one
// memoized instance — calibration generation, drift, compiler and
// machine are built once per (Setup fingerprint, i), with concurrent
// misses waiting on a single build (see roundcache.go). A cached Round
// is safe to share: the compiler and machine are immutable-by-contract,
// and every consumer derives from Round.RNG (derivation never advances
// the parent stream), so the cached copy is indistinguishable from a
// fresh one. With s.NoCache set, each call builds a fresh uncached
// round instead.
func (s Setup) Round(i int) *Round {
	if s.NoCache {
		return s.buildRound(i, false)
	}
	key := memo.Mix(s.fingerprint(), uint64(i))
	return roundCache.Get(key, func() *Round { return s.buildRound(i, true) })
}

// buildRound materializes round i from scratch. With cached set, the
// round's machine memoizes whole trial runs and its compiler keeps its
// ensemble cache; otherwise the compiler is an uncached view and the
// fresh machine has no trial-run cache, so repeated calls redo all TopK
// and simulation work. Either way the compiler tables themselves are
// shared through CachedCompiler — construction cost was amortized before
// the Round cache existed, and the frozen baseline keeps that behaviour.
func (s Setup) buildRound(i int, cached bool) *Round {
	root := rng.New(s.Seed)
	cal := device.Generate(s.Topo, s.Profile, root.DeriveN("calibration", i))
	runtimeCal := cal.Drift(s.Drift, root.DeriveN("drift", i))
	comp := mapper.CachedCompiler(cal)
	mach := backend.New(runtimeCal)
	mach.SetTrajectoryEngine(s.Engine)
	if cached {
		mach.EnableRunCache()
	} else {
		comp = comp.Uncached()
	}
	return &Round{
		Index:    i,
		Compiler: comp,
		Machine:  mach,
		Runner:   core.NewRunner(comp, mach),
		RNG:      root.DeriveN("round", i),
	}
}

// Median returns the median of xs (NaN-free input assumed). It panics on
// an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("experiment: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
