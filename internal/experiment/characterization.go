package experiment

import (
	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/statevec"
	"edm/internal/workloads"
)

// Fig1Result reproduces Figure 1: Bernstein-Vazirani with a 2-bit key on
// (a) an ideal machine, (b) a NISQ round where the correct answer still
// dominates, and (c) a NISQ round where a wrong answer dominates.
type Fig1Result struct {
	Key     bitstr.BitString
	Ideal   *dist.Dist
	Good    *dist.Dist // IST > 1 round (nil if none found)
	GoodIST float64
	Bad     *dist.Dist // IST < 1 round (nil if none found)
	BadIST  float64
}

// Fig1 searches the campaign rounds for a correct-inference and a
// wrong-inference output of BV-2. A deeper variant of BV-2 (the same key
// queried three times, uncomputed in between) is used for the noisy runs
// so that the error rates of the 14-qubit machine actually threaten the
// 2-bit answer the way they threaten the paper's full-size benchmarks.
func Fig1(s Setup) Fig1Result {
	w := workloads.BV("11")
	ideal, err := statevec.IdealDist(w.Circuit)
	if err != nil {
		panic(err)
	}
	out := Fig1Result{Key: w.Correct, Ideal: ideal}
	deep := deepBV2()
	dists := make([]*dist.Dist, s.Rounds)
	runCells(s.Rounds, func(i int) {
		r := s.Round(i)
		m, err := r.Runner.RunSingleBest(deep, s.Trials, r.RNG.Derive("fig1"))
		if err != nil {
			panic(err)
		}
		dists[i] = m.Output
	})
	for i := 0; i < s.Rounds; i++ {
		ist := dists[i].IST(w.Correct)
		switch {
		case ist > 1 && (out.Good == nil || ist > out.GoodIST):
			out.Good = dists[i]
			out.GoodIST = ist
		case ist < 1 && (out.Bad == nil || ist < out.BadIST):
			out.Bad = dists[i]
			out.BadIST = ist
		}
	}
	return out
}

// deepBV2 builds a BV-2 variant that applies the oracle three times: an
// odd number of applications keeps the phase kickback — and therefore the
// ideal answer — identical to a single query, while tripling the exposure
// to gate errors so the 2-bit answer is actually at risk.
func deepBV2() *circuit.Circuit {
	const n = 2
	anc := n
	c := circuit.New(n+1, n)
	c.Name = "bv-2-deep"
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.X(anc).H(anc)
	for rep := 0; rep < 3; rep++ {
		for q := 0; q < n; q++ {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// Fig3Result reproduces Figure 3: the sorted output distribution of BV-6
// under the single best mapping with the full trial budget.
type Fig3Result struct {
	Sorted   []dist.Outcome
	PST      float64
	IST      float64
	Support  int // number of distinct outcomes observed (paper: all 64)
	Outcomes int // size of the outcome space
}

// Fig3 runs BV-6 with the single best mapping on round 0.
func Fig3(s Setup) Fig3Result {
	w, _ := workloads.ByName("bv-6")
	r := s.Round(0)
	m, err := r.Runner.RunSingleBest(w.Circuit, s.Trials, r.RNG.Derive("fig3"))
	if err != nil {
		panic(err)
	}
	return Fig3Result{
		Sorted:   m.Output.Sorted(),
		PST:      m.Output.PST(w.Correct),
		IST:      m.Output.IST(w.Correct),
		Support:  m.Output.Support(),
		Outcomes: 1 << uint(w.Correct.Len()),
	}
}

// Fig4Result reproduces Figure 4: pairwise symmetric-KL heat maps between
// eight runs of the single best mapping (left) and one run of each of the
// top-8 diverse mappings (right).
type Fig4Result struct {
	Same       [][]float64
	Diverse    [][]float64
	AvgSame    float64 // paper reports ~0.03
	AvgDiverse float64 // paper reports ~0.5
}

// Fig4 executes the two eight-run experiments of Section 3.2 on round 0.
func Fig4(s Setup) Fig4Result {
	w, _ := workloads.ByName("bv-6")
	r := s.Round(0)
	execs, err := r.Compiler.TopK(w.Circuit, 8)
	if err != nil {
		panic(err)
	}
	sameDists := make([]*dist.Dist, 8)
	divDists := make([]*dist.Dist, len(execs))
	runCells(len(sameDists)+len(divDists), func(i int) {
		if i < len(sameDists) {
			d, err := r.Machine.RunDist(execs[0].Circuit, s.Trials, r.RNG.DeriveN("fig4-same", i))
			if err != nil {
				panic(err)
			}
			sameDists[i] = d
			return
		}
		j := i - len(sameDists)
		d, err := r.Machine.RunDist(execs[j].Circuit, s.Trials, r.RNG.DeriveN("fig4-div", j))
		if err != nil {
			panic(err)
		}
		divDists[j] = d
	})
	same, avgSame := pairwiseKL(sameDists)
	div, avgDiv := pairwiseKL(divDists)
	return Fig4Result{Same: same, Diverse: div, AvgSame: avgSame, AvgDiverse: avgDiv}
}

// pairwiseKL returns the symmetric-KL matrix and the mean off-diagonal
// value.
func pairwiseKL(ds []*dist.Dist) ([][]float64, float64) {
	n := len(ds)
	m := make([][]float64, n)
	var sum float64
	var cnt int
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = ds[i].SymKL(ds[j])
			sum += m[i][j]
			cnt++
		}
	}
	return m, sum / float64(cnt)
}
