package experiment

import (
	"edm/internal/circuit"
	"edm/internal/dist"
	"edm/internal/workloads"
)

// Table1Row is one row of the paper's Table 1 (benchmark
// characteristics), reported both for the logical circuit and after
// compilation onto the device — the paper's counts include routing SWAPs
// (e.g. bv-6's CX:7 is four oracle CX plus one SWAP lowered to three CX).
type Table1Row struct {
	Name        string
	Description string
	Output      string
	Logical     circuit.Stats
	Compiled    circuit.Stats
	Depth       int
	Swaps       int // routing SWAPs the mapper inserted (before lowering)
	ESP         float64
}

// Table1 compiles every benchmark with the round-0 compiler and reports
// the gate counts of Table 1.
func Table1(s Setup) []Table1Row {
	r := s.Round(0)
	rows := make([]Table1Row, 0, 9)
	for _, w := range workloads.All() {
		exe, err := r.Compiler.Compile(w.Circuit)
		if err != nil {
			panic(err)
		}
		lowered := exe.Circuit.LowerSwaps()
		rows = append(rows, Table1Row{
			Name:        w.Name,
			Description: w.Description,
			Output:      w.Correct.String(),
			Logical:     w.Circuit.Stats(),
			Compiled:    lowered.Stats(),
			Depth:       lowered.Depth(),
			Swaps:       exe.Swaps,
			ESP:         exe.ESP,
		})
	}
	return rows
}

// Table2Result is the Appendix-B KL worked example.
type Table2Result struct {
	P, Q      *dist.Dist
	DPQ, DQP  float64 // natural-log divergences
	SymKL     float64
	DPQBase10 float64 // the paper's printed numbers are base-10
	DQPBase10 float64
}

// Table2 reproduces the Appendix-B example: P = (0.2, 0.3, 0.4, 0.1)
// against the uniform distribution.
func Table2() Table2Result {
	p := dist.MustFromMap(map[string]float64{
		"00": 0.2, "10": 0.3, "01": 0.4, "11": 0.1,
	})
	q := dist.Uniform(2)
	dpq := p.KL(q)
	dqp := q.KL(p)
	const ln10 = 2.302585092994046
	return Table2Result{
		P: p, Q: q,
		DPQ: dpq, DQP: dqp,
		SymKL:     p.SymKL(q),
		DPQBase10: dpq / ln10,
		DQPBase10: dqp / ln10,
	}
}
