package experiment

import (
	"reflect"
	"testing"

	"edm/internal/mapper"
)

// stripTimings zeroes the wall-clock fields so results can be compared
// structurally across runs and modes.
func stripTimings(r DriftResult) DriftResult {
	r.CompileMsTotal, r.CompileMsSteady = 0, 0
	for i := range r.Rounds {
		r.Rounds[i].CompileMs = 0
	}
	return r
}

// cellsOf projects just the per-round cells (the physics: PSTs, ISTs and
// output-distribution fingerprints).
func cellsOf(r DriftResult) [][]DriftCell {
	out := make([][]DriftCell, len(r.Rounds))
	for i, rd := range r.Rounds {
		out[i] = rd.Cells
	}
	return out
}

// TestDriftCampaignIncrementalMatchesFull is the end-to-end exactness
// pin: the checked incremental campaign and the full-recompilation
// campaign produce bit-identical cells — same PSTs, same ISTs, same
// output-distribution fingerprints — and every cross-checked round
// reports the incremental pool identical to a full rebuild.
func TestDriftCampaignIncrementalMatchesFull(t *testing.T) {
	s := QuickDriftSetup()
	s.CrossCheckEvery = 2

	ResetCampaignCaches()
	inc := RunDrifting(s)

	full := s
	full.Mode = DriftFull
	ResetCampaignCaches()
	fullRes := RunDrifting(full)

	if !reflect.DeepEqual(cellsOf(inc), cellsOf(fullRes)) {
		t.Fatal("incremental campaign cells differ from full recompilation")
	}
	checked := 0
	for _, rd := range inc.Rounds {
		if !rd.CrossChecked {
			continue
		}
		checked++
		if !rd.PoolsIdentical {
			t.Fatalf("cycle %d: cross-check found incremental pool != full rebuild (max ESP delta %g)",
				rd.Cycle, rd.MaxESPDelta)
		}
	}
	if checked == 0 {
		t.Fatal("no round ran the cross-check; CrossCheckEvery wiring broken")
	}
	if inc.Stats.Pools == 0 {
		t.Fatalf("incremental campaign never upgraded a pool: %+v", inc.Stats)
	}
	if fullRes.Stats != (mapper.RecompileStats{}) {
		t.Fatalf("full mode recorded recompile stats: %+v", fullRes.Stats)
	}
}

// TestDriftCampaignRepeatable checks determinism: the same setup run
// twice produces identical results modulo wall-clock timings.
func TestDriftCampaignRepeatable(t *testing.T) {
	s := QuickDriftSetup()
	s.Cycles = 3
	ResetCampaignCaches()
	a := stripTimings(RunDrifting(s))
	ResetCampaignCaches()
	b := stripTimings(RunDrifting(s))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("drifting campaign is not deterministic across runs")
	}
}

// TestDriftCampaignTolZero checks the degenerate tolerance: every
// upgraded pool rebuilds fully (today's invalidate-on-any-change
// behavior) and the cells still match the full campaign.
func TestDriftCampaignTolZero(t *testing.T) {
	s := QuickDriftSetup()
	s.Cycles = 3
	s.Tol = 0
	s.CrossCheckEvery = 2
	ResetCampaignCaches()
	inc := RunDrifting(s)
	for _, rd := range inc.Rounds {
		if rd.Cycle == 0 {
			continue
		}
		if rd.Recompile.Pools != rd.Recompile.FullRebuilds {
			t.Fatalf("cycle %d: tol=0 upgraded a pool incrementally: %+v", rd.Cycle, rd.Recompile)
		}
		if rd.CrossChecked && !rd.PoolsIdentical {
			t.Fatalf("cycle %d: tol=0 pool differs from full rebuild", rd.Cycle)
		}
	}

	full := s
	full.Mode = DriftFull
	ResetCampaignCaches()
	fullRes := RunDrifting(full)
	if !reflect.DeepEqual(cellsOf(inc), cellsOf(fullRes)) {
		t.Fatal("tol=0 incremental cells differ from full recompilation")
	}
}

// TestDriftCampaignFastMode sanity-checks the approximate mode: the
// campaign completes, PSTs are probabilities, and cross-checked rounds
// report a finite routed-ESP delta rather than asserting identity.
func TestDriftCampaignFastMode(t *testing.T) {
	s := QuickDriftSetup()
	s.Cycles = 4
	s.Mode = DriftIncrementalFast
	s.CrossCheckEvery = 3
	ResetCampaignCaches()
	res := RunDrifting(s)
	if res.Mode != DriftIncrementalFast {
		t.Fatalf("mode not recorded: %v", res.Mode)
	}
	checked := false
	for _, rd := range res.Rounds {
		for _, c := range rd.Cells {
			for _, p := range []float64{c.BaselinePST, c.EDMPST} {
				if p < 0 || p > 1 {
					t.Fatalf("cycle %d %s: PST %g out of range", rd.Cycle, c.Workload, p)
				}
			}
		}
		if rd.CrossChecked {
			checked = true
			if rd.MaxESPDelta < 0 || rd.MaxESPDelta > 2 {
				t.Fatalf("cycle %d: routed-ESP delta %g out of range", rd.Cycle, rd.MaxESPDelta)
			}
		}
	}
	if !checked {
		t.Fatal("no cross-checked round")
	}
}

// TestDriftCampaignSurvival checks the reporting plumbing: diffs are
// recorded from cycle 1 on, survival is a valid fraction, and the
// counter deltas across rounds sum to the campaign aggregate.
func TestDriftCampaignSurvival(t *testing.T) {
	s := QuickDriftSetup()
	ResetCampaignCaches()
	res := RunDrifting(s)
	if len(res.Rounds) != s.Cycles {
		t.Fatalf("got %d rounds, want %d", len(res.Rounds), s.Cycles)
	}
	var sum mapper.RecompileStats
	for _, rd := range res.Rounds {
		if rd.Cycle == 0 {
			if rd.Diff.Qubits != 0 {
				t.Fatal("cycle 0 recorded a diff")
			}
			continue
		}
		if rd.Diff.TouchedQubits == 0 && rd.Diff.TouchedEdges == 0 {
			t.Fatalf("cycle %d: drifted calibration produced an empty diff", rd.Cycle)
		}
		if rd.Survival < 0 || rd.Survival > 1 {
			t.Fatalf("cycle %d: survival %g out of range", rd.Cycle, rd.Survival)
		}
		d := rd.Recompile
		sum.Pools += d.Pools
		sum.FullRebuilds += d.FullRebuilds
		sum.Reused += d.Reused
		sum.Rescored += d.Rescored
		sum.Rerouted += d.Rerouted
		sum.CheckFailed += d.CheckFailed
		sum.Dropped += d.Dropped
	}
	if sum != res.Stats {
		t.Fatalf("per-round recompile deltas sum to %+v, campaign aggregate %+v", sum, res.Stats)
	}
	if res.CompileMsSteady <= 0 || res.CompileMsTotal < res.CompileMsSteady {
		t.Fatalf("timing accounting off: total %g steady %g", res.CompileMsTotal, res.CompileMsSteady)
	}
}
