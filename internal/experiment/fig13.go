package experiment

import (
	"edm/internal/ballsim"
	"edm/internal/rng"
	"edm/internal/workloads"
)

// Fig13Point is one experimental (PST, IST) observation.
type Fig13Point struct {
	Workload string
	PST      float64
	IST      float64
}

// Fig13Result reproduces Figure 13 of Appendix A: the IST-vs-PST curves
// of the buckets-and-balls model (analytic uncorrelated, Monte-Carlo
// Qcor = 10% and 50%), their PST frontiers, and experimental scatter from
// single-best-mapping runs of QAOA-6, BV-6 and greycode on the simulated
// machine.
type Fig13Result struct {
	PS []float64 // x axis: success probability

	AnalyticUncorrelated []float64
	MCQcor10             []float64
	MCQcor50             []float64

	FrontierUncorrelated float64 // paper: ~1.8%
	FrontierQcor10       float64 // paper: ~3.6%
	FrontierQcor50       float64 // paper: ~8%

	Experimental []Fig13Point
}

// Fig13 runs the appendix experiment. The model uses M = 64 buckets and
// k = 6 (six-bit programs); the experimental scatter runs each of the
// three workloads once per campaign round with 8192 trials, matching the
// paper's per-run budget.
func Fig13(s Setup) Fig13Result {
	const m = 64
	r := rng.New(s.Seed).Derive("fig13")
	ps := []float64{0.005, 0.01, 0.018, 0.025, 0.036, 0.05, 0.08, 0.12, 0.18, 0.25}
	trials := 8192
	reps := 15

	out := Fig13Result{PS: ps}
	out.AnalyticUncorrelated = make([]float64, len(ps))
	for i, p := range ps {
		out.AnalyticUncorrelated[i] = ballsim.AnalyticIST(p, m, trials)
	}
	out.MCQcor10 = ballsim.Correlated(m, 0.10).Curve(ps, trials, reps, r.Derive("q10"))
	out.MCQcor50 = ballsim.Correlated(m, 0.50).Curve(ps, trials, reps, r.Derive("q50"))
	out.FrontierUncorrelated = ballsim.Uncorrelated(m).Frontier(trials, reps, r.Derive("f0"))
	out.FrontierQcor10 = ballsim.Correlated(m, 0.10).Frontier(trials, reps, r.Derive("f10"))
	out.FrontierQcor50 = ballsim.Correlated(m, 0.50).Frontier(trials, reps, r.Derive("f50"))

	names := []string{"qaoa-6", "bv-6", "greycode-6"}
	out.Experimental = make([]Fig13Point, len(names)*s.Rounds)
	runCells(len(out.Experimental), func(ci int) {
		name := names[ci/s.Rounds]
		w, _ := workloads.ByName(name)
		rd := s.Round(ci % s.Rounds)
		mem, err := rd.Runner.RunSingleBest(w.Circuit, trials, rd.RNG.Derive("fig13-"+name))
		if err != nil {
			panic(err)
		}
		out.Experimental[ci] = Fig13Point{
			Workload: name,
			PST:      mem.Output.PST(w.Correct),
			IST:      mem.Output.IST(w.Correct),
		}
	})
	return out
}
