package bench

import (
	"testing"

	"edm/internal/bitstr"
	"edm/internal/circuit"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/experiment"
	"edm/internal/mapper"
	"edm/internal/mitigate"
	"edm/internal/optimize"
	"edm/internal/rng"
	"edm/internal/selector"
	"edm/internal/transform"
	"edm/internal/workloads"
)

// This file holds the ablation benchmarks called out in DESIGN.md: each
// removes or inverts one design ingredient and reports how the EDM gain
// responds.

// ablationRun executes baseline + an ensemble policy over the campaign
// and returns the median IST of each.
func ablationRun(b *testing.B, s experiment.Setup, name string, cfg core.Config,
	pick func(r *experiment.Round, w workloads.Workload) []*mapper.Executable) (baseIST, ensIST float64) {
	b.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	var base, ens []float64
	for i := 0; i < s.Rounds; i++ {
		r := s.Round(i)
		seed := r.RNG.Derive("ablation")
		bm, err := r.Runner.RunSingleBest(w.Circuit, s.Trials, seed.Derive("base"))
		if err != nil {
			b.Fatal(err)
		}
		base = append(base, bm.Output.IST(w.Correct))

		var execs []*mapper.Executable
		if pick != nil {
			execs = pick(r, w)
		} else {
			execs, err = r.Compiler.TopK(w.Circuit, cfg.K)
			if err != nil {
				b.Fatal(err)
			}
		}
		res, err := r.Runner.RunExecutables(execs, cfg, seed.Derive("ens"))
		if err != nil {
			b.Fatal(err)
		}
		ens = append(ens, res.Merged.IST(w.Correct))
	}
	return experiment.Median(base), experiment.Median(ens)
}

// BenchmarkAblationIIDNoise removes every systematic (coherent) error
// channel, leaving only IID depolarizing + damping + unbiased readout —
// the noise model of the simulators the paper dismisses in Section 4.4.
// Expectation: baseline IST rises sharply (few correlated errors to
// suffer) and the EDM gain collapses toward 1x.
func BenchmarkAblationIIDNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.Config{K: 4, Trials: benchSetup().Trials, Weighting: core.WeightUniform}

		corr := benchSetup()
		base1, edm1 := ablationRun(b, corr, "bv-6", cfg, nil)

		iid := benchSetup()
		p := iid.Profile
		p.CohYMax, p.CohZMax, p.CXCohMax, p.CrossMax = 0, 0, 0, 0
		p.ReadoutCorr = 0
		// Symmetrize readout so no data-dependent bias remains.
		mean := (p.Meas01Mean + p.Meas10Mean) / 2
		p.Meas01Mean, p.Meas10Mean = mean, mean
		iid.Profile = p
		base2, edm2 := ablationRun(b, iid, "bv-6", cfg, nil)

		b.ReportMetric(ratioOr1(edm1, base1), "gain-correlated")
		b.ReportMetric(ratioOr1(edm2, base2), "gain-iid")
		b.ReportMetric(base2, "baseline-IST-iid")
		b.ReportMetric(base1, "baseline-IST-corr")
	}
}

// BenchmarkAblationWeighting compares the three merge rules on one
// campaign: uniform (EDM), divergence-weighted (WEDM) and
// inverse-divergence (control). Expectation: WEDM >= EDM > inverse.
func BenchmarkAblationWeighting(b *testing.B) {
	s := benchSetup()
	// Median-of-3 is too noisy to resolve the EDM-vs-inverse gap reliably;
	// this ablation doubles the rounds.
	s.Rounds *= 2
	for i := 0; i < b.N; i++ {
		for _, wgt := range []core.Weighting{core.WeightUniform, core.WeightDivergence, core.WeightInverseDivergence} {
			cfg := core.Config{K: 4, Trials: s.Trials, Weighting: wgt}
			base, ens := ablationRun(b, s, "bv-6", cfg, nil)
			b.ReportMetric(ratioOr1(ens, base), "gain-"+wgt.String())
		}
	}
}

// BenchmarkAblationRandomK replaces the top-K-by-ESP ensemble with K
// random valid placements. Random placements add diversity but squander
// ESP; the paper's top-K selection should win (Section 5.3).
func BenchmarkAblationRandomK(b *testing.B) {
	s := benchSetup()
	cfg := core.Config{K: 4, Trials: s.Trials, Weighting: core.WeightUniform}
	for i := 0; i < b.N; i++ {
		_, top := ablationRun(b, s, "bv-6", cfg, nil)
		_, random := ablationRun(b, s, "bv-6", cfg,
			func(r *experiment.Round, w workloads.Workload) []*mapper.Executable {
				all, err := r.Compiler.Placements(w.Circuit, 0)
				if err != nil {
					b.Fatal(err)
				}
				perm := r.RNG.Derive("random-k").Perm(len(all))
				out := make([]*mapper.Executable, 0, 4)
				for _, idx := range perm[:4] {
					out = append(out, all[idx])
				}
				return out
			})
		b.ReportMetric(top, "IST-topK")
		b.ReportMetric(random, "IST-randomK")
	}
}

// BenchmarkAblationUniformityFilter drives the machine into extreme noise
// (footnote 2's regime) and compares EDM with and without the
// relative-standard-deviation discard filter.
func BenchmarkAblationUniformityFilter(b *testing.B) {
	s := benchSetup()
	p := s.Profile
	p.CXErrMean *= 4 // extreme noise: some members degrade to uniform
	p.Meas10Mean *= 2
	p.Meas01Mean *= 2
	s.Profile = p
	for i := 0; i < b.N; i++ {
		plain := core.Config{K: 4, Trials: s.Trials, Weighting: core.WeightUniform}
		filtered := plain
		filtered.UniformityFilter = 0.15
		_, off := ablationRun(b, s, "bv-6", plain, nil)
		_, on := ablationRun(b, s, "bv-6", filtered, nil)
		b.ReportMetric(off, "IST-no-filter")
		b.ReportMetric(on, "IST-filter")
	}
}

// BenchmarkBackendTrial measures the raw cost of one noisy trajectory of
// the compiled BV-6 executable — the unit of work everything above
// multiplies.
func BenchmarkBackendTrial(b *testing.B) {
	s := benchSetup()
	r := s.Round(0)
	w, _ := workloads.ByName("bv-6")
	execs, err := r.Compiler.TopK(w.Circuit, 1)
	if err != nil {
		b.Fatal(err)
	}
	seed := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Machine.Run(execs[0].Circuit, 1, seed.DeriveN("t", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilerTopK measures the compile + VF2 enumeration + ESP
// ranking pipeline.
func BenchmarkCompilerTopK(b *testing.B) {
	s := benchSetup()
	r := s.Round(0)
	w, _ := workloads.ByName("bv-6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Compiler.TopK(w.Circuit, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeWEDM measures the WEDM weight computation and merge on
// realistic 6-bit distributions.
func BenchmarkMergeWEDM(b *testing.B) {
	r := rng.New(3)
	members := make([]*dist.Dist, 4)
	for i := range members {
		d := dist.New(6)
		for v := uint64(0); v < 64; v++ {
			d.Set(bitstrOf(v), r.Float64()+0.01)
		}
		d.Normalize()
		members[i] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := core.MergeWeights(members, core.WeightDivergence)
		_ = dist.WeightedMerge(members, w)
	}
}

func bitstrOf(v uint64) bitstr.BitString { return bitstr.New(v, 6) }

// BenchmarkExtensionInvertMeasure evaluates the paper's future-work
// direction implemented in internal/transform: composing EDM with the
// Invert-and-Measure basis transform. Reported: median IST of plain EDM-4
// versus the (4 mappings x 2 bases) grid on a ones-heavy BV key, the case
// measurement bias hurts most.
func BenchmarkExtensionInvertMeasure(b *testing.B) {
	s := benchSetup()
	w := workloads.BV("110111")
	for i := 0; i < b.N; i++ {
		var edm, grid []float64
		for round := 0; round < s.Rounds; round++ {
			r := s.Round(round)
			execs, err := r.Compiler.TopK(w.Circuit, 4)
			if err != nil {
				b.Fatal(err)
			}
			seed := r.RNG.Derive("ext-im")
			plain, err := transform.Ensemble(r.Machine, execs,
				func(c *circuit.Circuit) []transform.Variant {
					return []transform.Variant{transform.Identity(c)}
				}, s.Trials, core.WeightUniform, seed.Derive("edm"))
			if err != nil {
				b.Fatal(err)
			}
			both, err := transform.Ensemble(r.Machine, execs, transform.BothBases,
				s.Trials, core.WeightUniform, seed.Derive("grid"))
			if err != nil {
				b.Fatal(err)
			}
			edm = append(edm, plain.Merged.IST(w.Correct))
			grid = append(grid, both.Merged.IST(w.Correct))
		}
		b.ReportMetric(experiment.Median(edm), "IST-EDM")
		b.ReportMetric(experiment.Median(grid), "IST-EDM+IM")
	}
}

// BenchmarkExtensionPredictedIST evaluates the Section 5.3 alternative
// the paper set aside: choosing ensemble members by exactly simulated
// compile-time IST (internal/selector) instead of top-K ESP. Reported:
// run-time median IST of both ensembles under calibration drift. The
// interesting question is whether the exact predictor survives the
// compile-to-run drift that motivated top-K in the first place.
func BenchmarkExtensionPredictedIST(b *testing.B) {
	s := benchSetup()
	w, _ := workloads.ByName("bv-6")
	for i := 0; i < b.N; i++ {
		var esp, pred []float64
		for round := 0; round < s.Rounds; round++ {
			r := s.Round(round)
			cand, err := r.Compiler.TopK(w.Circuit, 8)
			if err != nil {
				b.Fatal(err)
			}
			seed := r.RNG.Derive("ext-pred")
			cfg := core.Config{K: 4, Trials: s.Trials, Weighting: core.WeightUniform}

			espRes, err := r.Runner.RunExecutables(cand[:4], cfg, seed.Derive("esp"))
			if err != nil {
				b.Fatal(err)
			}
			esp = append(esp, espRes.Merged.IST(w.Correct))

			chosen, _, err := selector.Select(r.Compiler.Calibration(), cand, 4, w.Correct,
				selector.Options{MaxCandidates: 8})
			if err != nil {
				b.Fatal(err)
			}
			cfg.K = len(chosen)
			predRes, err := r.Runner.RunExecutables(chosen, cfg, seed.Derive("pred"))
			if err != nil {
				b.Fatal(err)
			}
			pred = append(pred, predRes.Merged.IST(w.Correct))
		}
		b.ReportMetric(experiment.Median(esp), "IST-topK-ESP")
		b.ReportMetric(experiment.Median(pred), "IST-predicted")
	}
}

// BenchmarkAblationOptimizer measures what the peephole optimizer buys on
// a routed executable: gate-count reduction on the Toffoli-heavy decode24
// workload and the resulting IST change on the machine. Removing gates
// removes noise, so IST should not fall.
func BenchmarkAblationOptimizer(b *testing.B) {
	s := benchSetup()
	w, _ := workloads.ByName("decode24")
	for i := 0; i < b.N; i++ {
		var rawIST, optIST []float64
		var rawCX, optCX int
		for round := 0; round < s.Rounds; round++ {
			r := s.Round(round)
			exe, err := r.Compiler.Compile(w.Circuit)
			if err != nil {
				b.Fatal(err)
			}
			lowered := exe.Circuit.LowerSwaps()
			opt, _ := optimize.Circuit(lowered)
			rawCX = lowered.Stats().CX
			optCX = opt.Stats().CX
			seed := r.RNG.Derive("ablation-opt")
			dRaw, err := r.Machine.RunDist(lowered, s.Trials, seed.Derive("raw"))
			if err != nil {
				b.Fatal(err)
			}
			dOpt, err := r.Machine.RunDist(opt, s.Trials, seed.Derive("opt"))
			if err != nil {
				b.Fatal(err)
			}
			rawIST = append(rawIST, dRaw.IST(w.Correct))
			optIST = append(optIST, dOpt.IST(w.Correct))
		}
		b.ReportMetric(float64(rawCX), "CX-raw")
		b.ReportMetric(float64(optCX), "CX-optimized")
		b.ReportMetric(experiment.Median(rawIST), "IST-raw")
		b.ReportMetric(experiment.Median(optIST), "IST-optimized")
	}
}

// BenchmarkExtensionMitigation composes EDM with readout-error mitigation
// (internal/mitigate): each member's output log is pushed through the
// inverse confusion matrix of its own measured qubits before merging.
// Mitigation raises P(correct) where ensembling suppresses P(strongest
// wrong), so the two attack the inference problem from both sides.
func BenchmarkExtensionMitigation(b *testing.B) {
	s := benchSetup()
	w, _ := workloads.ByName("bv-6")
	for i := 0; i < b.N; i++ {
		var plain, stale, oracle []float64
		for round := 0; round < s.Rounds; round++ {
			r := s.Round(round)
			res, err := r.Runner.Run(w.Circuit,
				core.Config{K: 4, Trials: s.Trials, Weighting: core.WeightUniform},
				r.RNG.Derive("ext-mit"))
			if err != nil {
				b.Fatal(err)
			}
			plain = append(plain, res.Merged.IST(w.Correct))
			// Stale arm: invert with the compile-time calibration (what a
			// real user has). Oracle arm: invert with the machine's true
			// drifted rates, isolating how calibration-sensitive the
			// technique is.
			stale = append(stale, mitigatedIST(b, res, r.Compiler.Calibration(), w))
			oracle = append(oracle, mitigatedIST(b, res, r.Machine.Calibration(), w))
		}
		b.ReportMetric(experiment.Median(plain), "IST-EDM")
		b.ReportMetric(experiment.Median(stale), "IST+mit-stale-cal")
		b.ReportMetric(experiment.Median(oracle), "IST+mit-oracle-cal")
	}
}

func mitigatedIST(b *testing.B, res *core.Result, cal *device.Calibration, w workloads.Workload) float64 {
	b.Helper()
	outs := make([]*dist.Dist, 0, len(res.Members))
	for _, mem := range res.Members {
		chans, err := mitigate.ChannelsFor(mem.Exec.Circuit, cal)
		if err != nil {
			b.Fatal(err)
		}
		d, err := mitigate.InvertCounts(mem.Counts, chans)
		if err != nil {
			b.Fatal(err)
		}
		outs = append(outs, d)
	}
	return dist.Merge(outs).IST(w.Correct)
}
