#!/usr/bin/env bash
# Regenerates BENCH_kernels.json: runs the backend trajectory benchmarks
# and records the results next to the frozen pre-optimization baseline.
#
# Usage: scripts/bench_kernels.sh [output.json]
#   BENCHTIME=5s scripts/bench_kernels.sh   # longer runs, steadier numbers
#
# The baseline block below was measured at the commit immediately before
# the fusion/stride-kernel/cache overhaul, with the same benchmark bodies
# (single-trial trajectory execution of the representative 6/10/14-qubit
# executables, and the striped parallel Run path). Do not edit it when
# re-running; it is the denominator of the recorded speedups.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_kernels.json}"
BENCHTIME="${BENCHTIME:-2s}"

# name -> trials/s measured before the optimization PR.
BASELINE='
RunTrajectory/q6 20949
RunTrajectory/q10 817.8
RunTrajectory/q14 39.13
RunParallel 700.4
'

raw=$(go test -run=NONE -bench='RunTrajectory|RunParallel' \
	-benchtime="$BENCHTIME" ./internal/backend)
echo "$raw"

echo "$raw" | awk -v baseline="$BASELINE" -v date="$(date -u +%Y-%m-%d)" '
BEGIN {
	n = split(baseline, lines, "\n")
	for (i = 1; i <= n; i++) {
		if (split(lines[i], kv, " ") == 2) base[kv[1]] = kv[2]
	}
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "trials/s") tps[name] = $(i - 1)
		if ($i == "ns/op") nsop[name] = $(i - 1)
	}
	if (!(name in seen)) { order[++count] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"description\": \"backend trajectory throughput, baseline (pre fusion/stride/cache overhaul) vs current\",\n"
	printf "  \"benchmark\": \"go test -bench RunTrajectory|RunParallel ./internal/backend\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"headline\": \"RunTrajectory/q14\",\n"
	printf "  \"entries\": [\n"
	for (i = 1; i <= count; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"baseline_trials_per_sec\": %s, \"after_trials_per_sec\": %s, \"after_ns_per_op\": %s, \"speedup\": %.2f}%s\n", \
			name, base[name], tps[name], nsop[name], tps[name] / base[name], (i < count ? "," : "")
	}
	printf "  ]\n}\n"
}' >"$OUT"

echo "wrote $OUT"
