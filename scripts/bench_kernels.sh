#!/usr/bin/env bash
# Regenerates BENCH_kernels.json: trajectory throughput against the
# frozen pre-overhaul baseline, plus the statevector kernel
# micro-benchmarks against the frozen complex128 scalar loops.
#
# Usage: scripts/bench_kernels.sh [output.json]
#   BENCHTIME=5s scripts/bench_kernels.sh   # longer runs, steadier numbers
#
# Two baselines, two lifetimes. The trajectory baseline block below was
# measured at the commit immediately before the fusion/stride-kernel/
# cache overhaul with the same benchmark bodies; that code is gone, so
# the numbers are frozen here — do not edit them when re-running. The
# kernel baseline needs no frozen block: the pre-SoA complex128 loops
# live verbatim in internal/statevec/frozen_test.go (they are the
# bit-identity oracle), so the Frozen* benchmarks re-measure the
# denominator in the same process on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_kernels.json}"
BENCHTIME="${BENCHTIME:-2s}"

# name -> trials/s measured before the optimization PR.
BASELINE='
RunTrajectory/q6 20949
RunTrajectory/q10 817.8
RunTrajectory/q14 39.13
RunParallel 700.4
'

traj=$(go test -run=NONE -bench='RunTrajectory|RunParallel' \
	-benchtime="$BENCHTIME" ./internal/backend)
echo "$traj"

kern=$(go test -run=NONE \
	-bench='Apply1Q$|Apply2Q$|ApplyDiagonal|Apply1QAntiDiag|ApplyMixedDiagSequence|Frozen' \
	-benchtime="$BENCHTIME" ./internal/statevec)
echo "$kern"

{ echo "$traj"; echo "==KERNELS=="; echo "$kern"; } |
	awk -v baseline="$BASELINE" -v date="$(date -u +%Y-%m-%d)" '
BEGIN {
	n = split(baseline, lines, "\n")
	for (i = 1; i <= n; i++) {
		if (split(lines[i], kv, " ") == 2) base[kv[1]] = kv[2]
	}
	section = "traj"
}
/^==KERNELS==$/ { section = "kern"; next }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "trials/s") tps[name] = $(i - 1)
		if ($i == "ns/op") nsop[name] = $(i - 1)
	}
	if (section == "traj") {
		if (!(name in seenT)) { orderT[++countT] = name; seenT[name] = 1 }
	} else if (name !~ /^Frozen/) {
		if (!(name in seenK)) { orderK[++countK] = name; seenK[name] = 1 }
	}
}
END {
	printf "{\n"
	printf "  \"description\": \"backend trajectory throughput vs the frozen pre-overhaul baseline, and SoA/AVX2 statevector kernels vs the frozen complex128 scalar loops (frozen_test.go)\",\n"
	printf "  \"benchmark\": \"go test -bench RunTrajectory|RunParallel ./internal/backend; go test -bench Apply|Frozen ./internal/statevec\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"headline\": \"RunTrajectory/q14\",\n"
	printf "  \"entries\": [\n"
	for (i = 1; i <= countT; i++) {
		name = orderT[i]
		printf "    {\"name\": \"%s\", \"baseline_trials_per_sec\": %s, \"after_trials_per_sec\": %s, \"after_ns_per_op\": %s, \"speedup\": %.2f}%s\n", \
			name, base[name], tps[name], nsop[name], tps[name] / base[name], (i < countT ? "," : "")
	}
	printf "  ],\n"
	printf "  \"kernels\": [\n"
	for (i = 1; i <= countK; i++) {
		name = orderK[i]
		fname = "Frozen" name
		if (fname in nsop) {
			printf "    {\"name\": \"%s\", \"frozen_ns_per_op\": %s, \"after_ns_per_op\": %s, \"speedup\": %.2f}%s\n", \
				name, nsop[fname], nsop[name], nsop[fname] / nsop[name], (i < countK ? "," : "")
		} else {
			printf "    {\"name\": \"%s\", \"after_ns_per_op\": %s}%s\n", \
				name, nsop[name], (i < countK ? "," : "")
		}
	}
	printf "  ]\n}\n"
}' >"$OUT"

echo "wrote $OUT"
