#!/usr/bin/env bash
# Local CI gate: vet, build, full tests, then a race-detector pass over the
# packages with real concurrency (parallel ensemble members in core, striped
# trial workers and the program cache in backend, the work-split VF2 driver
# in graph, the parallel candidate pipeline in mapper, predicted-IST fan-out
# in selector, and the cell-parallel sweeps in experiment).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
UNFORMATTED="$(gofmt -l cmd internal)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/core ./internal/backend ./internal/graph \
	./internal/mapper ./internal/selector ./internal/experiment

echo "== router determinism at GOMAXPROCS=1 =="
# The parallel run above exercises the sweeps at full width; this pins the
# serial end of the router's bit-identical-across-GOMAXPROCS contract.
GOMAXPROCS=1 go test -race -count=1 -run 'Deterministic|Router' ./internal/mapper

echo "== campaign cache determinism (DESIGN.md §9) =="
# Cached concurrent sweeps must be byte-identical to the frozen uncached
# serial path, under the race detector; the memo singleflight core gets
# its own race pass.
go test -race -count=1 -run 'Campaign|TopKCache|RunCache|PrefixStability' \
	./internal/experiment ./internal/mapper ./internal/backend
go test -race -count=1 ./internal/memo

echo "== incremental recompilation identity (DESIGN.md §11) =="
# The drift-tracked pools must be bit-identical to full recompilation at
# any GOMAXPROCS: serial pins the GOMAXPROCS=1 end, the full-width pass
# runs under the race detector because pool upgrades re-score candidates
# in parallel and transfer materialized executables across generations.
GOMAXPROCS=1 go test -race -count=1 -run 'Tracking|DriftCampaign|GetGen|Diff|DriftLocal' \
	./internal/mapper ./internal/experiment ./internal/memo ./internal/device
go test -race -count=1 -run 'Tracking|DriftCampaign|GetGen|Diff|DriftLocal' \
	./internal/mapper ./internal/experiment ./internal/memo ./internal/device

echo "== trajectory engine determinism (DESIGN.md §10) =="
# The tape-tree engine must match the frozen legacy loop byte for byte
# at GOMAXPROCS=1 and at full stripe width; both passes run under the
# race detector because the tape tree and its checkpoints are shared
# read-only across workers (and the stats tally is flushed per stripe).
GOMAXPROCS=1 go test -race -count=1 -run 'PrefixEngine|PrefixDrawOrder|PrefixPlan' ./internal/backend
go test -race -count=1 -run 'PrefixEngine|PrefixDrawOrder|PrefixPlan' ./internal/backend

echo "== statevec kernel bit-identity (SoA + AVX2 vs frozen scalar) =="
# The SoA kernels must pin every amplitude bit against the frozen
# complex128 loops on both the scalar and (where available) AVX2 paths.
go test -count=1 -run 'KernelsBitIdentical' ./internal/statevec

echo "CI OK"
