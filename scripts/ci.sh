#!/usr/bin/env bash
# Local CI gate: vet, build, full tests, then a race-detector pass over the
# packages with real concurrency (parallel ensemble members in core, striped
# trial workers and the program cache in backend, the work-split VF2 driver
# in graph, the parallel candidate pipeline in mapper, predicted-IST fan-out
# in selector, and the cell-parallel sweeps in experiment).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
UNFORMATTED="$(gofmt -l cmd internal)"
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/core ./internal/backend ./internal/graph \
	./internal/mapper ./internal/selector ./internal/experiment

echo "== router determinism at GOMAXPROCS=1 =="
# The parallel run above exercises the sweeps at full width; this pins the
# serial end of the router's bit-identical-across-GOMAXPROCS contract.
GOMAXPROCS=1 go test -race -count=1 -run 'Deterministic|Router' ./internal/mapper

echo "== campaign cache determinism (DESIGN.md §9) =="
# Cached concurrent sweeps must be byte-identical to the frozen uncached
# serial path, under the race detector; the memo singleflight core gets
# its own race pass.
go test -race -count=1 -run 'Campaign|TopKCache|RunCache|PrefixStability' \
	./internal/experiment ./internal/mapper ./internal/backend
go test -race -count=1 ./internal/memo

echo "== serving stack: cancellation + singleflight under race (DESIGN.md §12) =="
# The detached-build cancellation contract: waiters whose contexts expire
# must detach without poisoning cache entries, at full GOMAXPROCS under
# the race detector, across the memo core, the ctx-threaded hot paths and
# the serve tier/admission layers.
go test -race -count=1 -run 'Ctx|Reentrant|Checked|Tier|Admission' \
	./internal/memo ./internal/pool ./internal/backend ./internal/mapper ./internal/core
go test -race -count=1 ./internal/serve

echo "== edmd smoke: CLI/server byte identity =="
# Start the server, post the same job the CLI runs, and require the text
# responses to be byte-for-byte identical — the determinism contract over
# HTTP. Also proves malformed payloads get a 4xx, not a dead process.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"; [ -n "${EDMD_PID:-}" ] && kill "$EDMD_PID" 2>/dev/null || true' EXIT
go build -o "$SMOKE/edm" ./cmd/edm
go build -o "$SMOKE/edmd" ./cmd/edmd
"$SMOKE/edm" run -workload bv-6 -k 2 -trials 512 -seed 7 >"$SMOKE/cli.txt"
"$SMOKE/edmd" serve -addr 127.0.0.1:0 >"$SMOKE/serve.log" &
EDMD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
	ADDR="$(sed -n 's/^edmd listening on \([^ ]*\).*/\1/p' "$SMOKE/serve.log")"
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "edmd never came up" >&2; cat "$SMOKE/serve.log" >&2; exit 1; }
curl -sf -X POST "http://$ADDR/v1/jobs?format=text" \
	-d '{"workload":"bv-6","k":2,"trials":512,"seed":7}' >"$SMOKE/srv.txt"
cmp "$SMOKE/cli.txt" "$SMOKE/srv.txt"
BAD_STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/jobs" -d 'not json')"
[ "$BAD_STATUS" = "400" ] || { echo "malformed job got $BAD_STATUS, want 400" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '^edmd_job_cache_misses_total 1$'
curl -sf "http://$ADDR/healthz" >/dev/null
kill -TERM "$EDMD_PID"
wait "$EDMD_PID" || { echo "edmd exited nonzero on SIGTERM" >&2; exit 1; }
EDMD_PID=""
echo "edmd smoke OK"

echo "== edmd wide-device smoke: 127-qubit heavy-hex (stabilizer engine) =="
# The same byte-identity contract on a device no statevector could
# represent: greycode-24 on eagle127 must serve the alternating golden
# output, match the CLI byte for byte, and actually run on the tableau
# (visible through the /metrics stabilizer counters).
"$SMOKE/edm" run -device eagle127 -workload greycode-24 -k 2 -trials 512 -seed 7 >"$SMOKE/cli127.txt"
"$SMOKE/edmd" serve -addr 127.0.0.1:0 -device eagle127 >"$SMOKE/serve127.log" &
EDMD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
	ADDR="$(sed -n 's/^edmd listening on \([^ ]*\).*/\1/p' "$SMOKE/serve127.log")"
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "wide edmd never came up" >&2; cat "$SMOKE/serve127.log" >&2; exit 1; }
curl -sf -X POST "http://$ADDR/v1/jobs?format=text" \
	-d '{"workload":"greycode-24","k":2,"trials":512,"seed":7}' >"$SMOKE/srv127.txt"
cmp "$SMOKE/cli127.txt" "$SMOKE/srv127.txt"
grep -q '^101010101010101010101010 ' "$SMOKE/srv127.txt" ||
	{ echo "greycode-24 golden output missing from the served distribution" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '^edmd_engine_stab_trials_total [1-9]' ||
	{ echo "stabilizer engine never engaged on eagle127" >&2; exit 1; }
kill -TERM "$EDMD_PID"
wait "$EDMD_PID" || { echo "wide edmd exited nonzero on SIGTERM" >&2; exit 1; }
EDMD_PID=""
echo "wide-device smoke OK"

echo "== incremental recompilation identity (DESIGN.md §11) =="
# The drift-tracked pools must be bit-identical to full recompilation at
# any GOMAXPROCS: serial pins the GOMAXPROCS=1 end, the full-width pass
# runs under the race detector because pool upgrades re-score candidates
# in parallel and transfer materialized executables across generations.
GOMAXPROCS=1 go test -race -count=1 -run 'Tracking|DriftCampaign|GetGen|Diff|DriftLocal' \
	./internal/mapper ./internal/experiment ./internal/memo ./internal/device
go test -race -count=1 -run 'Tracking|DriftCampaign|GetGen|Diff|DriftLocal' \
	./internal/mapper ./internal/experiment ./internal/memo ./internal/device

echo "== trajectory engine determinism (DESIGN.md §10) =="
# The tape-tree engine must match the frozen legacy loop byte for byte
# at GOMAXPROCS=1 and at full stripe width; both passes run under the
# race detector because the tape tree and its checkpoints are shared
# read-only across workers (and the stats tally is flushed per stripe).
GOMAXPROCS=1 go test -race -count=1 -run 'PrefixEngine|PrefixDrawOrder|PrefixPlan' ./internal/backend
go test -race -count=1 -run 'PrefixEngine|PrefixDrawOrder|PrefixPlan' ./internal/backend

echo "== batched replay identity (DESIGN.md §15) =="
# The batched divergent-suffix scheduler must match the sequential
# tape-tree replay (and, transitively, the legacy loop) byte for byte:
# GOMAXPROCS=1 pins the serial scheduler, the full-width pass runs the
# two-phase walk/replay pipeline with work stealing under the race
# detector.
GOMAXPROCS=1 go test -race -count=1 -run 'BatchedReplay|MaxLanesFor' ./internal/backend
go test -race -count=1 -run 'BatchedReplay|MaxLanesFor' ./internal/backend

echo "== statevec batch kernels: purego path =="
# The batch kernels' scalar fallbacks must pin the same frozen oracle
# as the AVX2 path; -tags purego forces them on an amd64 host.
go test -tags purego -count=1 ./internal/statevec

echo "== trajectory bench non-regression (committed BENCH_trajectory.json) =="
# The committed report must never regress the recorded q14 throughput
# of the previous commit. This compares recorded files (not a live
# measurement), so it is deterministic: it fails only when someone
# commits a report whose best q14 engine is slower than what the prior
# commit shipped. Older reports predate the batched engine, so fall
# back to the sequential column there.
if git rev-parse --verify -q HEAD:BENCH_trajectory.json >/dev/null; then
	git show HEAD:BENCH_trajectory.json >/tmp/bench_traj_head.json
	python3 - <<-'PY'
	import json
	def best(path):
	    rows = {r["case"]: r for r in json.load(open(path))["rows"]}
	    row = rows["RunTrajectory/q14"]
	    return max(row.get("batched_trials_per_s", 0.0), row["prefix_trials_per_s"])
	prior, current = best("/tmp/bench_traj_head.json"), best("BENCH_trajectory.json")
	print(f"q14 trials/s: prior commit {prior:.0f}, working tree {current:.0f}")
	if current < prior:
	    raise SystemExit("BENCH_trajectory.json q14 regressed vs the prior commit")
	PY
else
	echo "no committed BENCH_trajectory.json; skipping"
fi

echo "== stabilizer engine identity (DESIGN.md §13) =="
# Fully-Clifford schedules route to the tableau engine; its histograms
# must be byte-identical to both statevector engines at GOMAXPROCS=1
# and at full stripe width, under the race detector (the snapshot
# tableau is shared read-only across workers). The stabilizer and
# bitset packages carry the unit-level property tests.
GOMAXPROCS=1 go test -race -count=1 -run 'Stabilizer' ./internal/backend
go test -race -count=1 -run 'Stabilizer' ./internal/backend
go test -race -count=1 ./internal/stabilizer ./internal/bitset

echo "== statevec kernel bit-identity (SoA + AVX2 vs frozen scalar) =="
# The SoA kernels must pin every amplitude bit against the frozen
# complex128 loops on both the scalar and (where available) AVX2 paths.
go test -count=1 -run 'KernelsBitIdentical' ./internal/statevec

echo "CI OK"
