#!/usr/bin/env bash
# Regenerates BENCH_campaign.json: the end-to-end Fig9 + Fig11 Quick()
# campaign with the DESIGN.md §9 memoization layer (Round cache,
# ensemble cache, trial-run cache) versus the frozen pre-cache baseline
# (Setup.NoCache), the way bench_kernels.sh / bench_compiler.sh /
# bench_router.sh froze PRs 1-3.
#
# Usage: scripts/bench_campaign.sh [output.json]
#
# The measurement itself lives in TestCampaignBenchReport
# (internal/experiment/campaign_report_test.go), which skips unless
# EDM_BENCH_CAMPAIGN_OUT is set; keeping it in Go lets the report assert
# table bit-equality between the two modes in-process.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_campaign.json}"
case "$OUT" in
/*) ABS="$OUT" ;;
*) ABS="$(pwd)/$OUT" ;;
esac

EDM_BENCH_CAMPAIGN_OUT="$ABS" go test -run 'TestCampaignBenchReport$' -v -count=1 -timeout 60m ./internal/experiment |
	grep -v '^=== RUN\|^--- PASS' || true

if [ ! -s "$ABS" ]; then
	echo "bench_campaign: report was not written" >&2
	exit 1
fi
echo "wrote $OUT"
