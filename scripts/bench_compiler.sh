#!/usr/bin/env bash
# Regenerates BENCH_compiler.json: runs the compilation-pipeline benchmarks
# (TopK at the paper's k=4 across the Table 1 workload suite, single-best
# compilation, compiler construction) and records the results next to the
# frozen pre-optimization baseline.
#
# Usage: scripts/bench_compiler.sh [output.json]
#   BENCHTIME=3x scripts/bench_compiler.sh   # quick smoke run
#
# The baseline block below was measured at the commit immediately before
# the streaming-VF2/incremental-ESP/parallel-pipeline overhaul, with the
# same benchmark bodies (internal/mapper/bench_test.go is frozen for this
# reason). Do not edit it when re-running; it is the denominator of the
# recorded speedups.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_compiler.json}"
BENCHTIME="${BENCHTIME:-1s}"

# name -> ns/op measured before the optimization PR.
BASELINE='
TopK/greycode-6 1806775
TopK/bv-6 138941205
TopK/bv-7 209938928
TopK/qaoa-5 2364141
TopK/qaoa-6 2239737
TopK/qaoa-7 3952558
TopK/fredkin 511943
TopK/adder 1113502
TopK/decode24 1099320
SingleBest 103668176
NewCompiler 53408
'

raw=$(go test -run=NONE -bench='TopK|SingleBest|NewCompiler' \
	-benchtime="$BENCHTIME" ./internal/mapper)
echo "$raw"

echo "$raw" | awk -v baseline="$BASELINE" -v date="$(date -u +%Y-%m-%d)" '
BEGIN {
	n = split(baseline, lines, "\n")
	for (i = 1; i <= n; i++) {
		if (split(lines[i], kv, " ") == 2) base[kv[1]] = kv[2]
	}
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	# Workload names end in digits (bv-6, qaoa-7), so only strip a trailing
	# -N (the GOMAXPROCS suffix) when the raw name is not a baseline entry.
	if (!(name in base)) sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") nsop[name] = $(i - 1)
	}
	if (!(name in seen) && (name in base)) { order[++count] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"description\": \"compilation pipeline latency, baseline (pre streaming-VF2/incremental-ESP/parallel overhaul) vs current\",\n"
	printf "  \"benchmark\": \"go test -bench TopK|SingleBest|NewCompiler ./internal/mapper\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"headline\": \"TopK/bv-7\",\n"
	printf "  \"entries\": [\n"
	for (i = 1; i <= count; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"baseline_ns_per_op\": %s, \"after_ns_per_op\": %s, \"speedup\": %.2f}%s\n", \
			name, base[name], nsop[name], base[name] / nsop[name], (i < count ? "," : "")
	}
	printf "  ]\n}\n"
}' >"$OUT"

echo "wrote $OUT"
