#!/usr/bin/env bash
# Regenerates BENCH_trajectory.json: the DESIGN.md §10 tape-tree
# trajectory engine versus the frozen legacy full-replay loop
# (Machine.SetTrajectoryEngine(EngineLegacy)), with per-leaf hit rates,
# tree depth, and resident checkpoint bytes per case.
#
# Usage: scripts/bench_trajectory.sh [output.json]
#
# The measurement itself lives in TestTrajectoryBenchReport
# (internal/backend/trajectory_report_test.go), which skips unless
# EDM_BENCH_TRAJECTORY_OUT is set; keeping it in Go lets the report assert
# outcome byte-equality between the two engines in-process and enforce
# the >= 1.5x RunTrajectory/q14 acceptance bar.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_trajectory.json}"
case "$OUT" in
/*) ABS="$OUT" ;;
*) ABS="$(pwd)/$OUT" ;;
esac

EDM_BENCH_TRAJECTORY_OUT="$ABS" go test -run 'TestTrajectoryBenchReport$' -v -count=1 -timeout 30m ./internal/backend |
	grep -v '^=== RUN\|^--- PASS' || true

if [ ! -s "$ABS" ]; then
	echo "bench_trajectory: report was not written" >&2
	exit 1
fi
echo "wrote $OUT"
