#!/usr/bin/env bash
# Regenerates BENCH_stabilizer.json: the DESIGN.md §13 stabilizer
# tableau engine versus the tape-tree statevector engine on fully
# Clifford compiled schedules, plus tableau-only throughput on the
# heavy-hex devices (falcon27, eagle127) that exceed the statevector
# width limit.
#
# Usage: scripts/bench_stabilizer.sh [output.json]
#
# The measurement itself lives in TestStabilizerBenchReport
# (internal/backend/stabilizer_report_test.go), which skips unless
# EDM_BENCH_STABILIZER_OUT is set; keeping it in Go lets the report
# assert outcome byte-equality between the two engines in-process and
# enforce the >= 10x clifford/q12 acceptance bar.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_stabilizer.json}"
case "$OUT" in
/*) ABS="$OUT" ;;
*) ABS="$(pwd)/$OUT" ;;
esac

EDM_BENCH_STABILIZER_OUT="$ABS" go test -run 'TestStabilizerBenchReport$' -v -count=1 -timeout 30m ./internal/backend |
	grep -v '^=== RUN\|^--- PASS' || true

if [ ! -s "$ABS" ]; then
	echo "bench_stabilizer: report was not written" >&2
	exit 1
fi
echo "wrote $OUT"
