#!/usr/bin/env bash
# Regenerates BENCH_drift.json: the drifting campaign (DESIGN.md §11)
# compiled incrementally — calibration diffs, footprint-scoped pool
# reuse, dry-run re-route checks — versus full per-cycle recompilation,
# at tolerances 0, 1e-3 and 1e-2, plus the unchecked fast mode's
# routed-ESP delta.
#
# Usage: scripts/bench_drift.sh [output.json]
#
# The measurement itself lives in TestDriftBenchReport
# (internal/experiment/drift_report_test.go), which skips unless
# EDM_BENCH_DRIFT_OUT is set; keeping it in Go lets the report assert
# cell bit-equality between the two modes in-process, and enforce the
# >= 2x steady-state speedup bar at tol = 1e-3.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_drift.json}"
case "$OUT" in
/*) ABS="$OUT" ;;
*) ABS="$(pwd)/$OUT" ;;
esac

EDM_BENCH_DRIFT_OUT="$ABS" go test -run 'TestDriftBenchReport$' -v -count=1 -timeout 60m ./internal/experiment |
	grep -v '^=== RUN\|^--- PASS' || true

if [ ! -s "$ABS" ]; then
	echo "bench_drift: report was not written" >&2
	exit 1
fi
echo "wrote $OUT"
