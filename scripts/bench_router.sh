#!/usr/bin/env bash
# Regenerates BENCH_router.json: the SABRE-style bidirectional lookahead
# router versus the frozen greedy-walk baseline (routeGreedy) on the
# Table 1 workloads — SWAP counts, routed ESP and compile latency per
# workload, plus TopK(k=4) wall-clock against the PR 2 numbers recorded
# in BENCH_compiler.json.
#
# Usage: scripts/bench_router.sh [output.json]
#
# The measurement itself lives in TestRouterBenchReport
# (internal/mapper/router_report_test.go), which skips unless
# EDM_BENCH_ROUTER_OUT is set; keeping it in Go lets the report compute
# ESP ratios and geo-means exactly instead of re-parsing benchmark text.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_router.json}"
case "$OUT" in
/*) ABS="$OUT" ;;
*) ABS="$(pwd)/$OUT" ;;
esac

EDM_BENCH_ROUTER_OUT="$ABS" go test -run 'TestRouterBenchReport$' -v -count=1 ./internal/mapper |
	grep -v '^=== RUN\|^--- PASS' || true

if [ ! -s "$ABS" ]; then
	echo "bench_router: report was not written" >&2
	exit 1
fi
echo "wrote $OUT"
