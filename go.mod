module edm

go 1.22
