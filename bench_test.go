// Package bench is the paper-reproduction benchmark harness: one
// testing.B benchmark per table and figure of the evaluation. Each
// benchmark regenerates its artifact and reports the headline statistics
// as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers next to the timings. EXPERIMENTS.md
// records a full-scale run against the paper's values.
//
// Scale: benchmarks default to a reduced campaign (3 rounds, 4096 trials)
// so the whole suite completes in minutes. Set EDM_BENCH_FULL=1 for the
// paper-scale protocol (10 rounds, 16384 trials).
package bench

import (
	"os"
	"testing"

	"edm/internal/backend"
	"edm/internal/experiment"
)

// benchSetup returns the campaign scale for benchmarks. NoCache pins the
// measured work: these benchmarks loop identical figures per iteration,
// and with the campaign memoization layer on (DESIGN.md §9) every
// iteration after the first would measure cache hits instead of the
// compile and simulation work the numbers are frozen against. The
// cached path is benchmarked end-to-end by scripts/bench_campaign.sh.
// EngineStatevector pins the trajectory engine the same way: frozen
// baselines must keep measuring statevector work even if a future noise
// profile makes a schedule fully Clifford and eligible for the
// stabilizer fast path.
func benchSetup() experiment.Setup {
	s := experiment.Default()
	if os.Getenv("EDM_BENCH_FULL") == "" {
		s.Rounds = 3
		s.Trials = 4096
	}
	s.NoCache = true
	s.Engine = backend.EngineStatevector
	return s
}

// BenchmarkTable1 regenerates Table 1 (benchmark characteristics).
func BenchmarkTable1(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows := experiment.Table1(s)
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
		b.ReportMetric(float64(rows[1].Compiled.CX), "bv6-CX")
		b.ReportMetric(rows[1].ESP, "bv6-ESP")
	}
}

// BenchmarkTable2 regenerates the Appendix-B KL example.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Table2()
		b.ReportMetric(r.DPQBase10, "D(P||Q)b10")
		b.ReportMetric(r.DQPBase10, "D(Q||P)b10")
	}
}

// BenchmarkFig1 regenerates Figure 1 (BV-2 ideal / correct / wrong).
func BenchmarkFig1(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		r := experiment.Fig1(s)
		good, bad := 0.0, 0.0
		if r.Good != nil {
			good = 1
		}
		if r.Bad != nil {
			bad = 1
		}
		b.ReportMetric(good, "found-correct-round")
		b.ReportMetric(bad, "found-wrong-round")
	}
}

// BenchmarkFig3 regenerates Figure 3 (sorted BV-6 output distribution).
func BenchmarkFig3(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		r := experiment.Fig3(s)
		b.ReportMetric(r.PST, "PST")
		b.ReportMetric(r.IST, "IST")
		b.ReportMetric(float64(r.Support), "outcomes")
	}
}

// BenchmarkFig4 regenerates Figure 4 (pairwise KL heat maps). The paper's
// shape: diverse-mapping divergence far above same-mapping divergence.
func BenchmarkFig4(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		r := experiment.Fig4(s)
		b.ReportMetric(r.AvgSame, "KL-same")
		b.ReportMetric(r.AvgDiverse, "KL-diverse")
		if r.AvgDiverse <= r.AvgSame {
			b.Fatalf("diversity inverted: %v vs %v", r.AvgDiverse, r.AvgSame)
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (mappings A..H vs the ensemble).
func BenchmarkFig6(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		r := experiment.Fig6(s)
		b.ReportMetric(experiment.Median(r.MappingIST), "median-map-IST")
		b.ReportMetric(r.EDMIST, "EDM-IST")
	}
}

// BenchmarkFig7 regenerates Figure 7 (EDM vs compile-time and post-exec
// best single mappings, BV and QAOA).
func BenchmarkFig7(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig7(s)
		var overBase, overPost float64
		for _, r := range rows {
			overBase += r.EDMOverBaseline()
			overPost += r.EDMOverPostExec()
		}
		b.ReportMetric(overBase/float64(len(rows)), "EDM/baseline")
		b.ReportMetric(overPost/float64(len(rows)), "EDM/post-exec")
	}
}

// BenchmarkFig8 regenerates Figure 8 (ESP vs PST).
func BenchmarkFig8(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		r := experiment.Fig8(s)
		b.ReportMetric(r.Correlation, "ESP-PST-corr")
		b.ReportMetric(float64(r.BestPSTIndex), "best-PST-map")
	}
}

// BenchmarkFig9 regenerates Figure 9 (ensemble-size sensitivity).
func BenchmarkFig9(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig9(s)
		var g2, g4, g6 float64
		for _, r := range rows {
			g2 += ratioOr1(r.EDM2IST, r.BaselineIST)
			g4 += ratioOr1(r.EDMIST, r.BaselineIST)
			g6 += ratioOr1(r.EDM6IST, r.BaselineIST)
		}
		n := float64(len(rows))
		b.ReportMetric(g2/n, "EDM2-gain")
		b.ReportMetric(g4/n, "EDM4-gain")
		b.ReportMetric(g6/n, "EDM6-gain")
	}
}

// BenchmarkFig11 regenerates Figure 11 (EDM and WEDM across all
// workloads); the paper's headline numbers are up to 1.6x (EDM) and up to
// 2.3x (WEDM) IST improvement.
func BenchmarkFig11(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig11(s)
		var edm, wedm, maxEDM, maxWEDM float64
		for _, r := range rows {
			e, w := ratioOr1(r.EDMIST, r.BaselineIST), ratioOr1(r.WEDMIST, r.BaselineIST)
			edm += e
			wedm += w
			if e > maxEDM {
				maxEDM = e
			}
			if w > maxWEDM {
				maxWEDM = w
			}
		}
		n := float64(len(rows))
		b.ReportMetric(edm/n, "EDM-gain-avg")
		b.ReportMetric(wedm/n, "WEDM-gain-avg")
		b.ReportMetric(maxEDM, "EDM-gain-max")
		b.ReportMetric(maxWEDM, "WEDM-gain-max")
	}
}

// BenchmarkFig13 regenerates Figure 13 (buckets-and-balls frontiers and
// experimental scatter); paper frontiers: 1.8%, 3.6%, 8%.
func BenchmarkFig13(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		r := experiment.Fig13(s)
		b.ReportMetric(r.FrontierUncorrelated*100, "frontier-0%")
		b.ReportMetric(r.FrontierQcor10*100, "frontier-10%")
		b.ReportMetric(r.FrontierQcor50*100, "frontier-50%")
	}
}

func ratioOr1(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}
