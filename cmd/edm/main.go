// Command edm regenerates the paper's tables and figures on the simulated
// IBMQ-14 machine.
//
// Usage:
//
//	edm [flags] <experiment>
//	edm run [flags]        execute one job, print the canonical text result
//	edm serve [flags]      start the edmd compile+run server
//
// Experiments: table1 table2 fig1 fig3 fig4 fig6 fig7 fig8 fig9 fig11
// fig13 all
//
// The run and serve subcommands come from the table shared with cmd/edmd
// (internal/serve), so the two binaries execute jobs identically.
//
// Flags scale the campaign; the defaults match the paper's protocol
// (16384 trials, 10 rounds, 4-member ensembles, median reported).
// Use -quick for a fast smoke run, and -cpuprofile/-memprofile to
// capture pprof profiles of the campaign hot path.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"edm/internal/backend"
	"edm/internal/device"
	"edm/internal/experiment"
	"edm/internal/mapper"
	"edm/internal/serve"
)

func main() {
	// Shared serving subcommands dispatch before campaign flag parsing:
	// they own their flags, and keeping one table with edmd means the
	// binaries cannot drift.
	if len(os.Args) > 1 {
		if cmd, ok := serve.Lookup(os.Args[1]); ok {
			os.Exit(cmd.Run(os.Args[2:], os.Stdout, os.Stderr))
		}
	}
	var (
		seed   = flag.Uint64("seed", 2019, "campaign seed (full reproducibility)")
		rounds = flag.Int("rounds", 10, "calibration rounds (paper: 10)")
		trials = flag.Int("trials", 16384, "trials per policy per round (paper: 16384)")
		k      = flag.Int("k", 4, "default ensemble size (paper: 4)")
		drift  = flag.Float64("drift", 0.2, "calibration drift between compile and run time")
		dev    = flag.String("device", "", "campaign device: melbourne (default), tokyo, falcon27 or eagle127")
		quick  = flag.Bool("quick", false, "small fast campaign (3 rounds, 2048 trials)")
		stats  = flag.Bool("cachestats", false, "print campaign cache counters after the run")
		cpuOut = flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to `file`")
		memOut = flag.String("memprofile", "", "write a pprof heap profile to `file` after the run")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: edm [flags] <experiment>\n\nexperiments:\n")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "  %-8s %s\n\nsubcommands:\n", "all", "run every experiment in order")
		for _, c := range serve.Commands() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", c.Name, c.Desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		if flag.NArg() > 1 {
			fmt.Fprintf(os.Stderr, "edm: unexpected argument %q\n", flag.Arg(1))
		}
		flag.Usage()
		os.Exit(2)
	}
	// -quick fixes the campaign scale; combining it with explicit scale
	// flags would silently ignore them, so reject the combination.
	if *quick {
		conflict := ""
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "rounds" || f.Name == "trials" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "edm: -quick fixes the campaign scale and conflicts with -%s\n", conflict)
			os.Exit(2)
		}
	}

	s := experiment.Default()
	if *quick {
		s = experiment.Quick()
	}
	s.Seed = *seed
	if !*quick {
		s.Rounds = *rounds
		s.Trials = *trials
	}
	s.K = *k
	s.Drift = *drift
	topo, prof, err := device.ByName(*dev)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edm: %v\n", err)
		os.Exit(2)
	}
	s.Topo, s.Profile = topo, prof

	// Resolve the experiment list up front so an unknown name exits
	// before any profile file is created or started.
	name := flag.Arg(0)
	var todo []exp
	if name == "all" {
		todo = experiments
	} else {
		for _, e := range experiments {
			if e.name == name {
				todo = []exp{e}
				break
			}
		}
		if todo == nil {
			fmt.Fprintf(os.Stderr, "edm: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}

	stopProfiles := startProfiles(*cpuOut, *memOut)

	for _, e := range todo {
		if name == "all" {
			fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		}
		e.run(s)
		if name == "all" {
			fmt.Println()
		}
	}
	if *stats {
		printCacheStats(os.Stdout)
	}
	stopProfiles()
}

// startProfiles arms the requested pprof outputs and returns the hook
// main calls once the campaign is done: it stops the CPU profile and
// writes the heap profile after a final GC, so the snapshot reflects
// retained campaign state (caches, checkpoints) rather than transient
// garbage. Profiling failures are fatal up front — a silently missing
// profile after a long campaign is worse than an early exit.
func startProfiles(cpuOut, memOut string) func() {
	var cpuFile *os.File
	if cpuOut != "" {
		f, err := os.Create(cpuOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edm: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edm: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "edm: -cpuprofile: %v\n", err)
				os.Exit(1)
			}
		}
		if memOut != "" {
			f, err := os.Create(memOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "edm: -memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "edm: -memprofile: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "edm: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// printCacheStats reports the campaign memoization counters (DESIGN.md
// §9): the Round cache, the compiler and Top-K ensemble caches, and the
// per-machine backend caches aggregated across cached rounds.
func printCacheStats(out *os.File) {
	round := experiment.RoundCacheStats()
	comp := mapper.CompilerCacheStats()
	topk := mapper.TopKCacheStats()
	prog, run := experiment.BackendCacheStats()
	fmt.Fprintln(out, "campaign cache stats:")
	fmt.Fprintf(out, "  %-14s hits %-8d misses %-6d waits %-4d evictions %-4d entries %d\n",
		"round", round.Hits, round.Misses, round.Waits, round.Evictions, round.Entries)
	fmt.Fprintf(out, "  %-14s hits %-8d misses %-6d waits %-4d evictions %-4d entries %d\n",
		"compiler", comp.Hits, comp.Misses, comp.Waits, comp.Evictions, comp.Entries)
	fmt.Fprintf(out, "  %-14s hits %-8d misses %-6d waits %-4d evictions %-4d entries %d\n",
		"topk", topk.Hits, topk.Misses, topk.Waits, topk.Evictions, topk.Entries)
	fmt.Fprintf(out, "  %-14s hits %-8d misses %-6d evictions %d entries %d\n",
		"backend/prog", prog.Hits, prog.Misses, prog.Evictions, prog.Entries)
	fmt.Fprintf(out, "  %-14s hits %-8d misses %-6d waits %-4d evictions %-4d entries %d\n",
		"backend/run", run.Hits, run.Misses, run.Waits, run.Evictions, run.Entries)
	printRecompileStats(out)
	printEngineStats(out)
}

// printRecompileStats reports the incremental-recompilation counters
// (DESIGN.md §11), aggregated across every Tracking compiler in the
// process. All zeros outside drifting campaigns — the row only appears
// once a pool upgrade has run.
func printRecompileStats(out *os.File) {
	rs := mapper.RecompileStatsSnapshot()
	if rs.Pools == 0 {
		return
	}
	fmt.Fprintln(out, "incremental recompilation stats:")
	fmt.Fprintf(out, "  %-14s pools %-8d rebuilds %-6d check-failures %d\n",
		"recompile", rs.Pools, rs.FullRebuilds, rs.CheckFailed)
	fmt.Fprintf(out, "  %-14s reused %-7d rescored %-6d rerouted %-4d dropped %d (survival %.1f%%)\n",
		"candidates", rs.Reused, rs.Rescored, rs.Rerouted, rs.Dropped, 100*rs.Survival())
}

// printEngineStats reports the tape-tree trajectory engine counters
// (DESIGN.md §10). A nonzero fallback count means some compiled program
// had a Kraus shape the threshold tape cannot model and ran on the
// legacy loop — silent but slow, so -cachestats makes it visible.
func printEngineStats(out *os.File) {
	es := backend.EngineStatsSnapshot()
	fmt.Fprintln(out, "trajectory engine stats:")
	fmt.Fprintf(out, "  %-14s plans %-8d fallbacks %-4d leaves %d\n",
		"tape-tree", es.PlansBuilt, es.PlanFallbacks, es.TreeLeaves)
	fmt.Fprintf(out, "  %-14s dominant %-6d divergent %d\n",
		"trials", es.FullDominantTrials, es.DivergentTrials)
	meanBatch := 0.0
	if es.BatchUnits > 0 {
		meanBatch = float64(es.BatchTrials) / float64(es.BatchUnits)
	}
	fmt.Fprintf(out, "  %-14s buckets %-6d units %-6d mean-batch %-6.1f clones %-6d deferred %-4d steals %d\n",
		"batched", es.BatchBuckets, es.BatchUnits, meanBatch, es.BatchLaneClones, es.BatchDeferredTrials, es.UnitSteals)
	fmt.Fprintf(out, "  %-14s programs %-5d fallbacks %-4d prefix-steps %-6d max-words %-3d trials %d\n",
		"stabilizer", es.StabPrograms, es.StabFallbacks, es.StabPrefixSteps, es.StabMaxWords, es.StabTrials)
	if es.PlanFallbacks > 0 {
		fmt.Fprintf(out, "  warning: %d program(s) fell back to the legacy trajectory loop\n",
			es.PlanFallbacks)
	}
}

type exp struct {
	name string
	desc string
	run  func(experiment.Setup)
}

var experiments = []exp{
	{"table1", "benchmark characteristics (gate counts, ESP)", printTable1},
	{"table2", "Appendix-B KL-divergence worked example", func(experiment.Setup) { printTable2() }},
	{"fig1", "BV-2 output: ideal vs NISQ correct vs NISQ wrong", printFig1},
	{"fig3", "sorted output distribution of BV-6 (single best mapping)", printFig3},
	{"fig4", "pairwise KL: same mapping vs diverse mappings", printFig4},
	{"fig6", "IST of mappings A..H and the EDM ensemble", printFig6},
	{"fig7", "EDM vs single-best (compile-time and post-execution)", printFig7},
	{"fig8", "compile-time ESP vs run-time PST", printFig8},
	{"fig9", "ensemble-size sensitivity (EDM-2/4/6)", printFig9},
	{"fig11", "EDM and WEDM IST improvement over baseline", printFig11},
	{"fig13", "buckets-and-balls: IST vs PST, frontiers, experimental scatter", printFig13},
	{"drift", "drifting campaign: incremental recompilation across calibration windows", printDrift},
}
