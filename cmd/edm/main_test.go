package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edm/internal/experiment"
	"edm/internal/serve"
)

// microSetup is the smallest campaign that exercises every printer.
func microSetup() experiment.Setup {
	s := experiment.Quick()
	s.Rounds = 1
	s.Trials = 256
	return s
}

func capture(t *testing.T, f func()) string {
	t.Helper()
	var sb strings.Builder
	old := out
	out = &sb
	defer func() { out = old }()
	f()
	return sb.String()
}

func TestExperimentRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, e := range experiments {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Fatalf("incomplete registry entry: %+v", e.name)
		}
		if names[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		names[e.name] = true
	}
	for _, want := range []string{"table1", "table2", "fig1", "fig3", "fig4",
		"fig6", "fig7", "fig8", "fig9", "fig11", "fig13"} {
		if !names[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

func TestPrintTable1(t *testing.T) {
	got := capture(t, func() { printTable1(microSetup()) })
	for _, want := range []string{"bv-6", "qaoa-7", "decode24", "ESP", "110011"} {
		if !strings.Contains(got, want) {
			t.Errorf("table1 output missing %q:\n%s", want, got)
		}
	}
}

func TestPrintTable2(t *testing.T) {
	got := capture(t, func() { printTable2() })
	if !strings.Contains(got, "0.046") || !strings.Contains(got, "D(P||Q)") {
		t.Errorf("table2 output wrong:\n%s", got)
	}
}

func TestPrintFig3(t *testing.T) {
	got := capture(t, func() { printFig3(microSetup()) })
	if !strings.Contains(got, "PST") || !strings.Contains(got, "#") {
		t.Errorf("fig3 output wrong:\n%s", got)
	}
}

func TestPrintFig6(t *testing.T) {
	got := capture(t, func() { printFig6(microSetup()) })
	if !strings.Contains(got, "map-A") || !strings.Contains(got, "EDM(A+B+C+D)") {
		t.Errorf("fig6 output wrong:\n%s", got)
	}
}

func TestPrintFig8(t *testing.T) {
	got := capture(t, func() { printFig8(microSetup()) })
	if !strings.Contains(got, "Pearson correlation") {
		t.Errorf("fig8 output wrong:\n%s", got)
	}
}

func TestPrintFig13(t *testing.T) {
	got := capture(t, func() { printFig13(microSetup()) })
	for _, want := range []string{"frontiers", "Qcor=10%", "qaoa-6"} {
		if !strings.Contains(got, want) {
			t.Errorf("fig13 output missing %q:\n%s", want, got)
		}
	}
}

func TestPrintFig1(t *testing.T) {
	s := microSetup()
	s.Rounds = 2
	s.Trials = 1024
	got := capture(t, func() { printFig1(s) })
	if !strings.Contains(got, "ideal machine") {
		t.Errorf("fig1 output wrong:\n%s", got)
	}
}

func TestPrintFig4(t *testing.T) {
	s := microSetup()
	got := capture(t, func() { printFig4(s) })
	if !strings.Contains(got, "diversity ratio") || !strings.Contains(got, "scale:") {
		t.Errorf("fig4 output wrong:\n%s", got)
	}
}

func TestPrintFig7(t *testing.T) {
	got := capture(t, func() { printFig7(microSetup()) })
	if !strings.Contains(got, "EDM/compile") || !strings.Contains(got, "qaoa-5") {
		t.Errorf("fig7 output wrong:\n%s", got)
	}
}

func TestStartProfilesWritesBothOutputs(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop := startProfiles(cpu, mem)
	// Burn a little CPU so the profile has samples to encode.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	stop()
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesDisabledIsNoOp(t *testing.T) {
	stop := startProfiles("", "")
	stop() // must not panic or create files
}

// TestSharedSubcommandsDontShadowExperiments: the serving subcommands
// dispatch before the experiment registry, so a name collision would
// silently make an experiment unreachable. Forbid it.
func TestSharedSubcommandsDontShadowExperiments(t *testing.T) {
	names := map[string]bool{"all": true}
	for _, e := range experiments {
		names[e.name] = true
	}
	for _, c := range serve.Commands() {
		if names[c.Name] {
			t.Errorf("shared subcommand %q shadows an experiment", c.Name)
		}
		if c.Name == "" || c.Desc == "" || c.Run == nil {
			t.Errorf("incomplete shared subcommand %+v", c.Name)
		}
	}
}
