package main

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"edm/internal/dist"
	"edm/internal/experiment"
	"edm/internal/report"
)

// out is the destination for all experiment output; tests swap it.
var out io.Writer = os.Stdout

func printTable1(s experiment.Setup) {
	rows := experiment.Table1(s)
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, r.Output,
			strconv.Itoa(r.Logical.SG), strconv.Itoa(r.Logical.CX), strconv.Itoa(r.Logical.M),
			strconv.Itoa(r.Compiled.SG), strconv.Itoa(r.Compiled.CX), strconv.Itoa(r.Compiled.M),
			strconv.Itoa(r.Depth), strconv.Itoa(r.Swaps), report.F(r.ESP),
		})
	}
	report.Table(out, []string{
		"benchmark", "output",
		"SG", "CX", "M",
		"SG(mapped)", "CX(mapped)", "M(mapped)",
		"depth", "swaps", "ESP",
	}, cells)
	fmt.Fprintln(out, "\nnote: the paper's Table 1 lists post-mapping counts; compare the (mapped) columns.")
}

func printTable2() {
	r := experiment.Table2()
	fmt.Fprintf(out, "P = %v\nQ = %v\n", r.P, r.Q)
	report.Table(out, []string{"quantity", "nats", "base-10 (paper prints)"}, [][]string{
		{"D(P||Q)", report.F(r.DPQ), report.F(r.DPQBase10)},
		{"D(Q||P)", report.F(r.DQP), report.F(r.DQPBase10)},
		{"SD(P,Q)", report.F(r.SymKL), report.F(r.SymKL / 2.302585092994046)},
	})
}

func printDistTop(d *dist.Dist, n int) {
	top := d.TopK(n)
	cells := make([][]string, 0, len(top))
	for _, o := range top {
		cells = append(cells, []string{o.Value.String(), report.Pct(o.P)})
	}
	report.Table(out, []string{"outcome", "probability"}, cells)
}

func printFig1(s experiment.Setup) {
	r := experiment.Fig1(s)
	fmt.Fprintf(out, "(a) ideal machine, key %s:\n", r.Key)
	printDistTop(r.Ideal, 4)
	if r.Good != nil {
		fmt.Fprintf(out, "\n(b) NISQ round with correct inference (IST %.2f):\n", r.GoodIST)
		printDistTop(r.Good, 4)
	} else {
		fmt.Fprintln(out, "\n(b) no round produced IST > 1 at this scale")
	}
	if r.Bad != nil {
		fmt.Fprintf(out, "\n(c) NISQ round with wrong inference (IST %.2f):\n", r.BadIST)
		printDistTop(r.Bad, 4)
	} else {
		fmt.Fprintln(out, "\n(c) no round produced IST < 1 at this scale")
	}
}

func printFig3(s experiment.Setup) {
	r := experiment.Fig3(s)
	fmt.Fprintf(out, "BV-6, single best mapping, %d trials: PST %s, IST %.3f, %d/%d outcomes observed\n\n",
		s.Trials, report.Pct(r.PST), r.IST, r.Support, r.Outcomes)
	labels := make([]string, 0, 16)
	values := make([]float64, 0, 16)
	for i, o := range r.Sorted {
		if i == 16 {
			break
		}
		labels = append(labels, o.Value.String())
		values = append(values, o.P)
	}
	report.Bars(out, labels, values, 40, 0, "")
	fmt.Fprintln(out, "(outcomes sorted by frequency; paper Figure 3 shows the same shape)")
}

func printFig4(s experiment.Setup) {
	r := experiment.Fig4(s)
	fmt.Fprintf(out, "(a) eight runs, single best mapping: avg pairwise SymKL = %.3f\n", r.AvgSame)
	report.Heatmap(out, r.Same)
	fmt.Fprintf(out, "\n(b) eight diverse mappings: avg pairwise SymKL = %.3f\n", r.AvgDiverse)
	report.Heatmap(out, r.Diverse)
	fmt.Fprintf(out, "\ndiversity ratio: %.1fx (paper: ~0.5 vs ~0.03)\n", r.AvgDiverse/r.AvgSame)
}

func printFig6(s experiment.Setup) {
	r := experiment.Fig6(s)
	labels := make([]string, 0, 9)
	values := make([]float64, 0, 9)
	for i, ist := range r.MappingIST {
		labels = append(labels, fmt.Sprintf("map-%c", 'A'+i))
		values = append(values, ist)
	}
	labels = append(labels, "EDM(A+B+C+D)")
	values = append(values, r.EDMIST)
	report.Bars(out, labels, values, 40, 1, "IST=1")
}

func printFig7(s experiment.Setup) {
	rows := experiment.Fig7(s)
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload,
			report.F(r.BaselineIST), report.F(r.PostExecIST), report.F(r.EDMIST),
			report.F(r.EDMOverBaseline()), report.F(r.EDMOverPostExec()),
		})
	}
	report.Table(out, []string{
		"workload", "IST best(compile)", "IST best(post-exec)", "IST EDM",
		"EDM/compile", "EDM/post-exec",
	}, cells)
}

func printFig8(s experiment.Setup) {
	r := experiment.Fig8(s)
	cells := make([][]string, 0, 8)
	for i := range r.ESP {
		cells = append(cells, []string{
			fmt.Sprintf("map-%c", 'A'+i), report.F(r.ESP[i]), report.F(r.PST[i]),
		})
	}
	report.Table(out, []string{"mapping", "ESP (compile)", "PST (run)"}, cells)
	fmt.Fprintf(out, "\nPearson correlation %.3f; best by ESP: map-%c, best by PST: map-%c\n",
		r.Correlation, 'A'+r.BestESPIndex, 'A'+r.BestPSTIndex)
}

func printFig9(s experiment.Setup) {
	rows := experiment.Fig9(s)
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload, report.F(r.BaselineIST),
			report.F(r.EDM2IST), report.F(r.EDMIST), report.F(r.EDM6IST),
		})
	}
	report.Table(out, []string{"workload", "baseline IST", "EDM-2", "EDM-4", "EDM-6"}, cells)
}

func printFig11(s experiment.Setup) {
	rows := experiment.Fig11(s)
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload, report.F(r.BaselineIST), report.F(r.PostExecIST),
			report.F(r.EDMIST), report.F(r.WEDMIST),
			report.F(r.EDMOverBaseline()), report.F(r.WEDMOverBaseline()),
		})
	}
	report.Table(out, []string{
		"workload", "baseline IST", "post-exec IST", "EDM IST", "WEDM IST",
		"EDM gain", "WEDM gain",
	}, cells)
}

func printFig13(s experiment.Setup) {
	r := experiment.Fig13(s)
	cells := make([][]string, 0, len(r.PS))
	for i, ps := range r.PS {
		cells = append(cells, []string{
			report.Pct(ps),
			report.F(r.AnalyticUncorrelated[i]),
			report.F(r.MCQcor10[i]),
			report.F(r.MCQcor50[i]),
		})
	}
	report.Table(out, []string{"PST", "IST uncorrelated", "IST Qcor=10%", "IST Qcor=50%"}, cells)
	fmt.Fprintf(out, "\nPST frontiers (IST=1): uncorrelated %s, Qcor=10%% %s, Qcor=50%% %s\n",
		report.Pct(r.FrontierUncorrelated), report.Pct(r.FrontierQcor10), report.Pct(r.FrontierQcor50))
	fmt.Fprintln(out, "(paper: 1.8%, 3.6%, 8%)")
	fmt.Fprintln(out, "\nexperimental scatter (single best mapping, 8192 trials):")
	scatter := make([][]string, 0, len(r.Experimental))
	for _, p := range r.Experimental {
		scatter = append(scatter, []string{p.Workload, report.Pct(p.PST), report.F(p.IST)})
	}
	report.Table(out, []string{"workload", "PST", "IST"}, scatter)
}

// printDrift runs the drifting campaign (DESIGN.md §11): one device
// tracked across calibration windows, compiled incrementally with
// periodic cross-checks against full recompilation. The campaign scale
// maps from the shared Setup: seed, rounds (cycles), trials and drift.
func printDrift(s experiment.Setup) {
	ds := experiment.DefaultDriftSetup()
	ds.Seed = s.Seed
	ds.Cycles = s.Rounds
	ds.Trials = s.Trials
	ds.Drift = s.Drift
	ds.Topo, ds.Profile = s.Topo, s.Profile
	if ds.Cycles <= ds.CrossCheckEvery {
		ds.CrossCheckEvery = 2
	}
	r := experiment.RunDrifting(ds)
	fmt.Fprintf(out, "drifting campaign: mode %s, tol %g, %d cycles, workloads %v\n\n",
		r.Mode, r.Tol, len(r.Rounds), ds.Workloads)
	cells := make([][]string, 0, len(r.Rounds))
	for _, rd := range r.Rounds {
		check := "-"
		if rd.CrossChecked {
			if rd.PoolsIdentical {
				check = "identical"
			} else {
				check = fmt.Sprintf("esp delta %.1e", rd.MaxESPDelta)
			}
		}
		cells = append(cells, []string{
			strconv.Itoa(rd.Cycle),
			fmt.Sprintf("%d/%d", rd.Diff.ChangedQubits, rd.Diff.TouchedQubits),
			fmt.Sprintf("%d/%d", rd.Diff.ChangedEdges, rd.Diff.TouchedEdges),
			report.Pct(rd.Survival),
			strconv.FormatUint(rd.Recompile.Reused+rd.Recompile.Rescored, 10),
			strconv.FormatUint(rd.Recompile.Rerouted, 10),
			strconv.FormatUint(rd.Recompile.FullRebuilds, 10),
			fmt.Sprintf("%.2f", rd.CompileMs),
			check,
		})
	}
	report.Table(out, []string{
		"cycle", "qubits tol/any", "edges tol/any", "survival",
		"kept", "rerouted", "rebuilds", "compile ms", "cross-check",
	}, cells)
	fmt.Fprintf(out, "\ncompile wall time: %.2f ms total, %.2f ms steady state (cycles >= 1)\n",
		r.CompileMsTotal, r.CompileMsSteady)
	fmt.Fprintf(out, "pool survival: %s of %d candidates kept their structure\n",
		report.Pct(r.Stats.Survival()), r.Stats.Processed())
}
