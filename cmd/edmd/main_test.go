package main

import (
	"strings"
	"testing"
)

func TestUnknownSubcommandExitsNonzero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown subcommand") || !strings.Contains(errw.String(), "serve") {
		t.Fatalf("usage not printed:\n%s", errw.String())
	}
}

func TestBadFlagExitsNonzero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"run", "-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	var out2, errw2 strings.Builder
	if code := run([]string{"run", "stray-arg"}, &out2, &errw2); code != 2 {
		t.Fatalf("stray argument exit code %d, want 2", code)
	}
}

func TestBadJobExitsNonzero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"run", "-workload", "no-such-workload", "-trials", "64"}, &out, &errw); code != 2 {
		t.Fatalf("exit code %d, want 2; stderr:\n%s", code, errw.String())
	}
}

func TestRunSubcommandPrintsResult(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"run", "-workload", "bv-6", "-k", "2", "-trials", "256", "-seed", "5"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code %d; stderr:\n%s", code, errw.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "# bv-6 window=0 policy=edm k=2 trials=256 seed=5\n") {
		t.Fatalf("unexpected header:\n%s", got)
	}
	if strings.Count(got, "\n") < 2 {
		t.Fatalf("no outcomes printed:\n%s", got)
	}
}
