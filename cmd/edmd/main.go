// Command edmd is the long-running compile+run server: it accepts
// circuit jobs over HTTP/JSON, deduplicates them through the repository's
// fingerprint-keyed caches, and returns merged EDM/WEDM distributions
// bit-identical to what `edm run` prints for the same job.
//
// Usage:
//
//	edmd [serve] [flags]    start the server (the default subcommand)
//	edmd run [flags]        execute one job locally, print text result
//
// The subcommand table is shared with cmd/edm, so `edm run` / `edm serve`
// and `edmd run` / `edmd serve` are the same code.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"edm/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// Bare flags default to the serve subcommand; a first non-flag
	// argument selects one explicitly.
	name := "serve"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		args = args[1:]
	}
	cmd, ok := serve.Lookup(name)
	if !ok {
		fmt.Fprintf(stderr, "edmd: unknown subcommand %q\n", name)
		usage(stderr)
		return 2
	}
	return cmd.Run(args, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: edmd [subcommand] [flags]\n\nsubcommands:\n")
	for _, c := range serve.Commands() {
		fmt.Fprintf(w, "  %-8s %s\n", c.Name, c.Desc)
	}
}
