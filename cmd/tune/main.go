// Command tune is a development diagnostic: it measures the four policies
// of Figure 11 at configurable scale and prints per-round detail, so noise
// -model changes can be judged on real statistics instead of 3-round medians.
package main

import (
	"flag"
	"fmt"
	"sort"

	"edm/internal/core"
	"edm/internal/dist"
	"edm/internal/experiment"
	"edm/internal/stats"
	"edm/internal/workloads"
)

func main() {
	rounds := flag.Int("rounds", 10, "rounds")
	trials := flag.Int("trials", 8192, "trials")
	name := flag.String("w", "bv-6", "workload")
	ci := flag.Bool("ci", false, "print a bootstrap 95% confidence interval for each EDM IST")
	flag.Parse()
	s := experiment.Default()
	s.Rounds = *rounds
	s.Trials = *trials
	w, ok := workloads.ByName(*name)
	if !ok {
		w = workloads.BV("110011")
	}
	var base, post, edm, wedm []float64
	for i := 0; i < s.Rounds; i++ {
		r := s.Round(i)
		seed := r.RNG.Derive("tune")
		bm, err := r.Runner.RunSingleBest(w.Circuit, s.Trials, seed.Derive("base"))
		ck(err)
		res, err := r.Runner.Run(w.Circuit, core.Config{K: 4, Trials: s.Trials, Weighting: core.WeightUniform}, seed.Derive("edm"))
		ck(err)
		pm, err := r.Runner.BestPostExec(res, w.Correct, s.Trials, seed.Derive("post"))
		ck(err)
		wd := dist.WeightedMerge(res.MemberOutputs(), core.MergeWeights(res.MemberOutputs(), core.WeightDivergence))
		b := bm.Output.IST(w.Correct)
		p := pm.Output.IST(w.Correct)
		e := res.Merged.IST(w.Correct)
		we := wd.IST(w.Correct)
		base, post, edm, wedm = append(base, b), append(post, p), append(edm, e), append(wedm, we)
		var mists []string
		for _, m := range res.Members {
			mists = append(mists, fmt.Sprintf("%.2f", m.Output.IST(w.Correct)))
		}
		fmt.Printf("round %2d: base %.3f post %.3f EDM %.3f WEDM %.3f members %v\n", i, b, p, e, we, mists)
		if *ci {
			merged := dist.NewCounts(w.Correct.Len())
			for _, m := range res.Members {
				merged.Merge(m.Counts)
			}
			iv := stats.ISTInterval(merged, w.Correct, 300, 0.95, seed.Derive("ci"))
			fmt.Printf("          EDM IST %v -> inference %s\n", iv, stats.InferenceDecision(iv))
		}
	}
	fmt.Printf("\nmedians: base %.3f post %.3f EDM %.3f WEDM %.3f\n", med(base), med(post), med(edm), med(wedm))
	fmt.Printf("gains:   EDM/base %.3f  EDM/post %.3f  WEDM/base %.3f\n",
		med(edm)/med(base), med(edm)/med(post), med(wedm)/med(base))
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func ck(err error) {
	if err != nil {
		panic(err)
	}
}
