package main

import "testing"

func TestMedian(t *testing.T) {
	if got := med([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("med = %v", got)
	}
	if got := med([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("med = %v", got)
	}
}

func TestCkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ck(nil error) semantics wrong")
		}
	}()
	ck(errFake{})
}

type errFake struct{}

func (errFake) Error() string { return "x" }
