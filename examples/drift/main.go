// Calibration drift study: why the compiler's "best" mapping is not the
// machine's best mapping, and why an ensemble is robust to the gap.
//
// The compiler ranks placements by ESP computed from calibration-cycle
// data; the machine's behaviour drifts before and during the run (paper
// Section 5.3, Figure 8). This example measures, across increasing drift,
// how often the compile-time favourite is still the run-time winner, and
// what that does to single-mapping versus ensemble inference.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"math"
	"os"
	"sort"

	"edm/internal/backend"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/report"
	"edm/internal/rng"
	"edm/internal/workloads"
)

func main() {
	w := workloads.BV("110011")
	const rounds = 4
	const trials = 2048

	fmt.Println("workload:", w.Description)
	fmt.Println()
	headers := []string{"drift", "ESP->PST corr", "favourite wins", "median IST best", "median IST EDM"}
	var rows [][]string

	for _, drift := range []float64{0.0, 0.15, 0.3, 0.5} {
		var corrSum float64
		favouriteWins := 0
		var bestISTs, edmISTs []float64
		for round := 0; round < rounds; round++ {
			cal := device.Generate(device.Melbourne(), device.MelbourneProfile(),
				rng.New(uint64(1000+round)))
			runtimeCal := cal.Drift(drift, rng.New(uint64(2000+round)))
			comp := mapper.NewCompiler(cal)
			machine := backend.New(runtimeCal)
			runner := core.NewRunner(comp, machine)
			seed := rng.New(uint64(3000+round)).DeriveN("drift", int(drift*100))

			execs, err := comp.TopK(w.Circuit, 4)
			check(err)
			// Run each candidate with an equal share to observe run-time PST.
			psts := make([]float64, len(execs))
			esps := make([]float64, len(execs))
			for i, e := range execs {
				d, err := machine.RunDist(e.Circuit, trials/len(execs), seed.DeriveN("probe", i))
				check(err)
				psts[i] = d.PST(w.Correct)
				esps[i] = e.ESP
			}
			if argmax(psts) == 0 {
				favouriteWins++ // the compile-time best (index 0) won at run time
			}
			corrSum += pearson(esps, psts)

			base, err := runner.RunSingleBest(w.Circuit, trials, seed.Derive("base"))
			check(err)
			res, err := runner.Run(w.Circuit,
				core.Config{K: 4, Trials: trials, Weighting: core.WeightUniform},
				seed.Derive("edm"))
			check(err)
			bestISTs = append(bestISTs, base.Output.IST(w.Correct))
			edmISTs = append(edmISTs, res.Merged.IST(w.Correct))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", drift),
			report.F(corrSum / rounds),
			fmt.Sprintf("%d/%d", favouriteWins, rounds),
			report.F(median(bestISTs)),
			report.F(median(edmISTs)),
		})
	}
	report.Table(os.Stdout, headers, rows)
	fmt.Println("\n'favourite wins' counts rounds where the top-ESP mapping also had the top run-time PST.")
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
