// Custom device: EDM is not tied to the IBMQ-14 ladder. This example
// defines a 4x4 grid machine with a user-supplied noise profile, runs the
// grey-code decoder on it, and sweeps the ensemble size — the sensitivity
// study a user should run on their own hardware before fixing K (paper
// Section 5.5 recommends exactly that).
//
//	go run ./examples/customdevice
package main

import (
	"fmt"
	"os"

	"edm/internal/backend"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/report"
	"edm/internal/rng"
	"edm/internal/workloads"
)

func main() {
	// A 16-qubit grid with a noise profile quieter than melbourne on
	// gates but with very uneven readout — say, a fab with good couplers
	// and inconsistent resonators.
	topo := device.Grid(4, 4)
	profile := device.MelbourneProfile()
	profile.CXErrMean = 0.02
	profile.Meas10Mean = 0.12
	profile.Meas10Spread = 1.2
	profile.Meas01Spread = 1.2
	profile.BadQubits = 3

	w := workloads.Greycode("101001")
	fmt.Printf("device: %s (%d qubits, %d couplings)\n", topo.Name, topo.Qubits, len(topo.Edges()))
	fmt.Printf("workload: %s\n\n", w.Description)

	const rounds = 5
	const trials = 8192
	headers := []string{"policy", "median IST", "median PST", "rounds with correct inference"}
	type stat struct {
		ist, pst []float64
		wins     int
	}
	stats := map[string]*stat{}
	policies := []string{"best-1", "EDM-2", "EDM-4", "EDM-6", "WEDM-4"}
	for _, p := range policies {
		stats[p] = &stat{}
	}

	for round := 0; round < rounds; round++ {
		cal := device.Generate(topo, profile, rng.New(uint64(10+round)))
		machine := backend.New(cal.Drift(0.2, rng.New(uint64(20+round))))
		runner := core.NewRunner(mapper.NewCompiler(cal), machine)
		seed := rng.New(uint64(30 + round))

		record := func(policy string, ist, pst float64, correct bool) {
			s := stats[policy]
			s.ist = append(s.ist, ist)
			s.pst = append(s.pst, pst)
			if correct {
				s.wins++
			}
		}

		base, err := runner.RunSingleBest(w.Circuit, trials, seed.Derive("base"))
		check(err)
		record("best-1", base.Output.IST(w.Correct), base.Output.PST(w.Correct),
			base.Output.MostLikely().Value.Equal(w.Correct))

		for _, k := range []int{2, 4, 6} {
			res, err := runner.Run(w.Circuit,
				core.Config{K: k, Trials: trials, Weighting: core.WeightUniform},
				seed.DeriveN("edm", k))
			check(err)
			record(fmt.Sprintf("EDM-%d", k),
				res.Merged.IST(w.Correct), res.Merged.PST(w.Correct),
				res.Merged.MostLikely().Value.Equal(w.Correct))
		}

		wres, err := runner.Run(w.Circuit,
			core.Config{K: 4, Trials: trials, Weighting: core.WeightDivergence},
			seed.Derive("wedm"))
		check(err)
		record("WEDM-4", wres.Merged.IST(w.Correct), wres.Merged.PST(w.Correct),
			wres.Merged.MostLikely().Value.Equal(w.Correct))
	}

	var rows [][]string
	for _, p := range policies {
		s := stats[p]
		rows = append(rows, []string{
			p, report.F(median(s.ist)), report.Pct(median(s.pst)),
			fmt.Sprintf("%d/%d", s.wins, rounds),
		})
	}
	report.Table(os.Stdout, headers, rows)
	fmt.Println("\npick the smallest K whose IST clears 1 with margin on *your* device;")
	fmt.Println("the paper found K=4 right for IBMQ-14 but warns it is machine-specific.")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
