// Max-cut with QAOA under ensembled mappings.
//
// A delivery company wants to split six depots into two shifts so that as
// many adjacent-depot handovers as possible cross shifts — max-cut on the
// depot adjacency path. QAOA solves it on a noisy 14-qubit machine; this
// example shows how the Ensemble of Diverse Mappings affects the odds
// that the most frequent measurement is actually the optimal cut.
//
//	go run ./examples/maxcut
package main

import (
	"fmt"

	"edm/internal/backend"
	"edm/internal/bitstr"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/rng"
	"edm/internal/workloads"
)

func main() {
	const depots = 6
	w := workloads.QAOA(depots)
	fmt.Printf("max-cut instance: %s\noptimal cut: %s (S1 = depots marked 1)\n\n",
		w.Description, w.Correct)

	rounds := 5
	var baseWins, edmWins int
	for round := 0; round < rounds; round++ {
		cal := device.Generate(device.Melbourne(), device.MelbourneProfile(),
			rng.New(uint64(100+round)))
		machine := backend.New(cal.Drift(0.2, rng.New(uint64(200+round))))
		runner := core.NewRunner(mapper.NewCompiler(cal), machine)
		seed := rng.New(uint64(300 + round))

		base, err := runner.RunSingleBest(w.Circuit, 8192, seed.Derive("base"))
		check(err)
		res, err := runner.Run(w.Circuit,
			core.Config{K: 4, Trials: 8192, Weighting: core.WeightDivergence},
			seed.Derive("edm"))
		check(err)

		baseOK := base.Output.MostLikely().Value.Equal(w.Correct)
		edmOK := res.Merged.MostLikely().Value.Equal(w.Correct)
		if baseOK {
			baseWins++
		}
		if edmOK {
			edmWins++
		}
		fmt.Printf("round %d: baseline IST %.3f (inferred %v)  WEDM IST %.3f (inferred %v)\n",
			round,
			base.Output.IST(w.Correct), verdict(baseOK),
			res.Merged.IST(w.Correct), verdict(edmOK))
	}

	fmt.Printf("\ncorrect inference: baseline %d/%d rounds, WEDM %d/%d rounds\n",
		baseWins, rounds, edmWins, rounds)

	// Show what the chosen partition means, from the final round's output.
	cut := w.Correct
	fmt.Println("\nshift assignment from the optimal cut:")
	for d := 0; d < depots; d++ {
		shift := "night"
		if cut.Bit(d) {
			shift = "day"
		}
		fmt.Printf("  depot %d -> %s shift\n", d, shift)
	}
	fmt.Printf("handovers crossing shifts: %d of %d\n", cutEdges(cut), depots-1)
}

// cutEdges counts path edges cut by the partition.
func cutEdges(cut bitstr.BitString) int {
	n := 0
	for i := 0; i+1 < cut.Len(); i++ {
		if cut.Bit(i) != cut.Bit(i+1) {
			n++
		}
	}
	return n
}

func verdict(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
