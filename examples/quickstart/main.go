// Quickstart: run a Bernstein-Vazirani program on the simulated IBMQ-14
// machine with the single best mapping and with an Ensemble of Diverse
// Mappings (EDM), and compare how reliably each infers the hidden key.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"edm/internal/backend"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/mapper"
	"edm/internal/report"
	"edm/internal/rng"
	"edm/internal/workloads"
)

func main() {
	// 1. A device: the 14-qubit melbourne topology with a calibration
	//    drawn at paper-reported error magnitudes. The machine itself
	//    runs a drifted copy of that calibration — just like real
	//    hardware between two calibration cycles.
	topo := device.Melbourne()
	cal := device.Generate(topo, device.MelbourneProfile(), rng.New(7))
	machine := backend.New(cal.Drift(0.2, rng.New(8)))

	// 2. A program: Bernstein-Vazirani with the paper's 6-bit key.
	w := workloads.BV("110011")
	fmt.Printf("program: %s (%s)\n", w.Name, w.Description)

	// 3. The variation-aware compiler sees the *compile-time* calibration.
	comp := mapper.NewCompiler(cal)
	runner := core.NewRunner(comp, machine)
	seed := rng.New(42)

	// Baseline: all 16384 trials on the single best mapping.
	base, err := runner.RunSingleBest(w.Circuit, 16384, seed.Derive("baseline"))
	check(err)

	// EDM: the same 16384 trials split over the top-4 diverse mappings.
	res, err := runner.Run(w.Circuit, core.DefaultConfig(), seed.Derive("edm"))
	check(err)

	fmt.Printf("\nbaseline mapping (layout %v, ESP %.3f):\n",
		base.Exec.InitialLayout, base.Exec.ESP)
	fmt.Printf("  PST %s   IST %.3f\n",
		report.Pct(base.Output.PST(w.Correct)), base.Output.IST(w.Correct))

	fmt.Println("\nEDM ensemble members:")
	for i, m := range res.Members {
		fmt.Printf("  member %d: qubits %v  ESP %.3f  member IST %.3f\n",
			i, m.Exec.UsedQubits(), m.Exec.ESP, m.Output.IST(w.Correct))
	}
	fmt.Printf("\nEDM merged: PST %s   IST %.3f\n",
		report.Pct(res.Merged.PST(w.Correct)), res.Merged.IST(w.Correct))

	fmt.Println("\nmost frequent outcomes (EDM merged):")
	for _, o := range res.Merged.TopK(5) {
		marker := ""
		if o.Value.Equal(w.Correct) {
			marker = "   <- correct key"
		}
		fmt.Printf("  %s  %s%s\n", o.Value, report.Pct(o.P), marker)
	}

	if res.Merged.IST(w.Correct) > base.Output.IST(w.Correct) {
		fmt.Println("\nEDM improved the inference strength over the single best mapping.")
	} else {
		fmt.Println("\nthis calibration round favoured the single mapping; try other seeds —")
		fmt.Println("the paper (and bench_test.go) report the median over ten rounds.")
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
