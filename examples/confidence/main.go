// How many trials are enough? NISQ inference is a statistics problem:
// with too few trials even a healthy machine cannot separate the correct
// answer from the strongest wrong one. This example sweeps the trial
// budget for an EDM run, bootstraps a confidence interval for the
// ensemble's IST at every scale, and prints the point at which the
// inference verdict stops being "uncertain".
//
//	go run ./examples/confidence
package main

import (
	"fmt"
	"os"

	"edm/internal/backend"
	"edm/internal/core"
	"edm/internal/device"
	"edm/internal/dist"
	"edm/internal/mapper"
	"edm/internal/report"
	"edm/internal/rng"
	"edm/internal/stats"
	"edm/internal/workloads"
)

func main() {
	w := workloads.BV("1011")
	fmt.Printf("workload: %s\n\n", w.Description)

	cal := device.Generate(device.Melbourne(), device.MelbourneProfile(), rng.New(11))
	runner := core.NewRunner(mapper.NewCompiler(cal), backend.New(cal.Drift(0.15, rng.New(12))))

	headers := []string{"trials", "EDM IST (95% CI)", "verdict"}
	var rows [][]string
	for _, trials := range []int{512, 2048, 8192, 32768} {
		res, err := runner.Run(w.Circuit,
			core.Config{K: 4, Trials: trials, Weighting: core.WeightUniform},
			rng.New(uint64(100+trials)))
		if err != nil {
			panic(err)
		}
		// The ensemble's merged log: concatenating member histograms is
		// the uniform merge when members share the trial split.
		merged := dist.NewCounts(w.Correct.Len())
		for _, m := range res.Members {
			merged.Merge(m.Counts)
		}
		iv := stats.ISTInterval(merged, w.Correct, 400, 0.95, rng.New(uint64(200+trials)))
		rows = append(rows, []string{
			fmt.Sprintf("%d", trials),
			iv.String(),
			stats.InferenceDecision(iv),
		})
	}
	report.Table(os.Stdout, headers, rows)
	fmt.Println("\n'yes' means the whole interval clears IST = 1: the most frequent outcome")
	fmt.Println("can be trusted to be the correct answer at this confidence level.")
}
